#include "core/moments.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace fbm::core {
namespace {

flow::ModelInputs inputs() {
  flow::ModelInputs in;
  in.lambda = 200.0;
  in.mean_size_bits = 1.6e5;     // 20 kB
  in.mean_s2_over_d = 6.4e9;     // bits^2/s
  in.flows = 10000;
  return in;
}

TEST(Corollary1, MeanRate) {
  EXPECT_DOUBLE_EQ(mean_rate(inputs()), 200.0 * 1.6e5);  // 32 Mbps
}

TEST(Corollary2, RectangularVariance) {
  EXPECT_DOUBLE_EQ(power_shot_variance(inputs(), 0.0), 200.0 * 6.4e9);
}

TEST(Corollary2, TriangularIsFourThirds) {
  EXPECT_NEAR(power_shot_variance(inputs(), 1.0),
              4.0 / 3.0 * power_shot_variance(inputs(), 0.0), 1e-3);
}

TEST(Corollary2, ParabolicIsNineFifths) {
  EXPECT_NEAR(power_shot_variance(inputs(), 2.0),
              9.0 / 5.0 * power_shot_variance(inputs(), 0.0), 1e-3);
}

TEST(Corollary2, VarianceIncreasesWithB) {
  double prev = 0.0;
  for (double b : {0.0, 0.5, 1.0, 2.0, 4.0, 8.0}) {
    const double v = power_shot_variance(inputs(), b);
    EXPECT_GT(v, prev) << b;
    prev = v;
  }
}

TEST(Corollary2, RejectsNegativeB) {
  EXPECT_THROW((void)power_shot_variance(inputs(), -1.0),
               std::invalid_argument);
}

TEST(Theorem3, LowerBoundIsRectangular) {
  EXPECT_DOUBLE_EQ(variance_lower_bound(inputs()),
                   power_shot_variance(inputs(), 0.0));
}

TEST(PowerShotCov, Formula) {
  const auto in = inputs();
  const double expected =
      std::sqrt(power_shot_variance(in, 1.0)) / mean_rate(in);
  EXPECT_DOUBLE_EQ(power_shot_cov(in, 1.0), expected);
}

TEST(PowerShotCov, ZeroMeanIsZero) {
  flow::ModelInputs in;
  in.lambda = 1.0;
  EXPECT_DOUBLE_EQ(power_shot_cov(in, 1.0), 0.0);
}

TEST(ScaleLambda, SmoothingLaw) {
  // Section VII-A: mean scales as lambda, stddev as sqrt(lambda), CoV as
  // 1/sqrt(lambda).
  const auto base = inputs();
  const auto x4 = scale_lambda(base, 4.0);
  EXPECT_DOUBLE_EQ(mean_rate(x4), 4.0 * mean_rate(base));
  EXPECT_NEAR(std::sqrt(power_shot_variance(x4, 1.0)),
              2.0 * std::sqrt(power_shot_variance(base, 1.0)), 1e-3);
  EXPECT_NEAR(power_shot_cov(x4, 1.0), power_shot_cov(base, 1.0) / 2.0,
              1e-12);
}

TEST(ScaleLambda, RejectsNonPositive) {
  EXPECT_THROW((void)scale_lambda(inputs(), 0.0), std::invalid_argument);
}

}  // namespace
}  // namespace fbm::core
