#include "core/multiclass.hpp"

#include <gtest/gtest.h>

#include "stats/rng.hpp"

namespace fbm::core {
namespace {

ShotNoiseModel make_model(double lambda, double size_bits, double duration,
                          ShotPtr shot) {
  return ShotNoiseModel(lambda, {{size_bits, duration}}, std::move(shot));
}

TEST(Multiclass, MomentsAddAcrossClasses) {
  MulticlassModel mc;
  mc.add_class("a", make_model(100.0, 8e4, 1.0, rectangular_shot()));
  mc.add_class("b", make_model(10.0, 8e5, 4.0, triangular_shot()));
  const auto& a = mc.class_model(0);
  const auto& b = mc.class_model(1);
  EXPECT_DOUBLE_EQ(mc.lambda(), 110.0);
  EXPECT_DOUBLE_EQ(mc.mean_rate(), a.mean_rate() + b.mean_rate());
  EXPECT_DOUBLE_EQ(mc.variance(), a.variance() + b.variance());
  EXPECT_NEAR(mc.autocovariance(0.5),
              a.autocovariance(0.5) + b.autocovariance(0.5), 1e-9);
  EXPECT_NEAR(mc.cumulant(3), a.cumulant(3) + b.cumulant(3), 1e-6);
}

TEST(Multiclass, SharesSumToOne) {
  MulticlassModel mc;
  mc.add_class("a", make_model(100.0, 8e4, 1.0, rectangular_shot()));
  mc.add_class("b", make_model(10.0, 8e5, 4.0, triangular_shot()));
  EXPECT_NEAR(mc.mean_share(0) + mc.mean_share(1), 1.0, 1e-12);
  EXPECT_NEAR(mc.variance_share(0) + mc.variance_share(1), 1.0, 1e-12);
}

TEST(Multiclass, SingleClassEqualsPlainModel) {
  const auto m = make_model(50.0, 1e5, 2.0, parabolic_shot());
  MulticlassModel mc;
  mc.add_class("only", m);
  EXPECT_DOUBLE_EQ(mc.mean_rate(), m.mean_rate());
  EXPECT_DOUBLE_EQ(mc.variance(), m.variance());
  EXPECT_DOUBLE_EQ(mc.cov(), m.cov());
}

TEST(Multiclass, GaussianUsesAggregateMoments) {
  MulticlassModel mc;
  mc.add_class("a", make_model(100.0, 8e4, 1.0, rectangular_shot()));
  mc.add_class("b", make_model(10.0, 8e5, 4.0, triangular_shot()));
  const auto g = mc.gaussian();
  EXPECT_DOUBLE_EQ(g.mean(), mc.mean_rate());
}

TEST(Multiclass, ElephantsDominateVarianceDespiteMice) {
  // Few large flows contribute most of the variance even when mice carry a
  // comparable share of the mean — the operational insight the class split
  // provides.
  MulticlassModel mc;
  mc.add_class("mice", make_model(1000.0, 4e4, 0.5, rectangular_shot()));
  mc.add_class("elephants", make_model(5.0, 8e6, 5.0, rectangular_shot()));
  EXPECT_GT(mc.variance_share(1), 0.6);
  EXPECT_LT(mc.mean_share(1), 0.6);
}

TEST(SplitBySize, PartitionsAndUsesPerClassShots) {
  flow::IntervalData iv;
  iv.start = 0.0;
  iv.length = 10.0;
  stats::Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    flow::FlowRecord f;
    f.start = rng.uniform(0.0, 10.0);
    f.end = f.start + 1.0;
    f.size_bytes = i % 10 == 0 ? 500000 : 5000;  // 10% elephants
    f.packets = 3;
    iv.flows.push_back(f);
  }
  const auto mc = split_by_size(iv, 100000.0, rectangular_shot(),
                                parabolic_shot());
  ASSERT_EQ(mc.classes(), 2u);
  EXPECT_EQ(mc.class_name(0), "mice");
  EXPECT_EQ(mc.class_name(1), "elephants");
  EXPECT_NEAR(mc.class_model(0).lambda(), 18.0, 1e-9);
  EXPECT_NEAR(mc.class_model(1).lambda(), 2.0, 1e-9);
  EXPECT_EQ(mc.class_model(1).shot().name(), "parabolic (b=2)");
  // Lambda of the aggregate equals the single-class lambda.
  EXPECT_NEAR(mc.lambda(), 20.0, 1e-9);
}

TEST(SplitBySize, AllFlowsOnOneSideGivesOneClass) {
  flow::IntervalData iv;
  iv.length = 10.0;
  flow::FlowRecord f;
  f.start = 1.0;
  f.end = 2.0;
  f.size_bytes = 100;
  f.packets = 2;
  iv.flows.push_back(f);
  const auto mc = split_by_size(iv, 1e9, rectangular_shot(),
                                triangular_shot());
  EXPECT_EQ(mc.classes(), 1u);
  EXPECT_EQ(mc.class_name(0), "mice");
}

TEST(SplitBySize, EmptyIntervalThrows) {
  flow::IntervalData iv;
  iv.length = 10.0;
  EXPECT_THROW((void)split_by_size(iv, 1e5, rectangular_shot(),
                                   triangular_shot()),
               std::invalid_argument);
}

TEST(Multiclass, ClassIndexOutOfRangeThrows) {
  MulticlassModel mc;
  EXPECT_THROW((void)mc.class_name(0), std::out_of_range);
  EXPECT_THROW((void)mc.class_model(0), std::out_of_range);
}

}  // namespace
}  // namespace fbm::core
