#include "core/quadrature.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace fbm::core {
namespace {

TEST(Quadrature, PolynomialIsExact) {
  // GL-32 is exact to degree 63.
  const double got = integrate([](double x) { return x * x * x - 2.0 * x; },
                               -1.0, 3.0);
  // int x^3 - 2x dx = x^4/4 - x^2 over [-1,3] = (81/4-9) - (1/4-1) = 12.
  EXPECT_NEAR(got, 12.0, 1e-12);
}

TEST(Quadrature, HighDegreePolynomial) {
  const double got = integrate([](double x) { return std::pow(x, 20); },
                               0.0, 1.0);
  EXPECT_NEAR(got, 1.0 / 21.0, 1e-13);
}

TEST(Quadrature, ExponentialFunction) {
  const double got = integrate([](double x) { return std::exp(-x); },
                               0.0, 5.0);
  EXPECT_NEAR(got, 1.0 - std::exp(-5.0), 1e-12);
}

TEST(Quadrature, EmptyOrInvertedIntervalIsZero) {
  EXPECT_DOUBLE_EQ(integrate([](double) { return 1.0; }, 2.0, 2.0), 0.0);
  EXPECT_DOUBLE_EQ(integrate([](double) { return 1.0; }, 3.0, 2.0), 0.0);
}

TEST(Quadrature, PanelsHandleOscillation) {
  // int_0^10 cos(20x) dx = sin(200)/20.
  const double expected = std::sin(200.0) / 20.0;
  const double got = integrate_panels([](double x) { return std::cos(20.0 * x); },
                                      0.0, 10.0, 64);
  EXPECT_NEAR(got, expected, 1e-10);
}

TEST(Quadrature, PanelsZeroCount) {
  EXPECT_DOUBLE_EQ(
      integrate_panels([](double) { return 1.0; }, 0.0, 1.0, 0), 0.0);
}

TEST(Quadrature, FractionalPower) {
  // Powers like u^0.5 (sub-linear shots) integrate accurately.
  const double got = integrate([](double x) { return std::sqrt(x); }, 0.0,
                               1.0);
  EXPECT_NEAR(got, 2.0 / 3.0, 1e-5);
}

}  // namespace
}  // namespace fbm::core
