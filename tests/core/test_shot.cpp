#include "core/shot.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "core/quadrature.hpp"

namespace fbm::core {
namespace {

constexpr double kS = 8e5;  // 100 kB flow in bits
constexpr double kD = 2.5;  // seconds

// ------------------------------------------------ parameterized over power b

class PowerShotProperties : public ::testing::TestWithParam<double> {};

TEST_P(PowerShotProperties, IntegratesToSize) {
  const PowerShot shot(GetParam());
  // Panel quadrature: fractional powers (b=0.5) have a derivative
  // singularity at u=0 that a single Gauss-Legendre panel cannot resolve.
  const double mass = integrate_panels(
      [&](double u) { return shot.value(u, kS, kD); }, 0.0, kD, 64);
  EXPECT_NEAR(mass, kS, 1e-6 * kS);
}

TEST_P(PowerShotProperties, ZeroOutsideLifetime) {
  const PowerShot shot(GetParam());
  EXPECT_DOUBLE_EQ(shot.value(-0.1, kS, kD), 0.0);
  EXPECT_DOUBLE_EQ(shot.value(kD + 0.1, kS, kD), 0.0);
}

TEST_P(PowerShotProperties, EnergyMatchesQuadrature) {
  const PowerShot shot(GetParam());
  const double direct = integrate(
      [&](double u) {
        const double x = shot.value(u, kS, kD);
        return x * x;
      },
      0.0, kD);
  EXPECT_NEAR(shot.energy(kS, kD), direct, 1e-6 * direct);
}

TEST_P(PowerShotProperties, KernelAtZeroEqualsEnergy) {
  const PowerShot shot(GetParam());
  EXPECT_NEAR(shot.autocov_kernel(0.0, kS, kD), shot.energy(kS, kD),
              1e-9 * shot.energy(kS, kD));
}

TEST_P(PowerShotProperties, KernelMatchesQuadrature) {
  const PowerShot shot(GetParam());
  for (double tau : {0.1, 0.5, 1.0, 2.0}) {
    const double direct = integrate(
        [&](double u) {
          return shot.value(u, kS, kD) * shot.value(u + tau, kS, kD);
        },
        0.0, kD - tau);
    EXPECT_NEAR(shot.autocov_kernel(tau, kS, kD), direct,
                1e-6 * direct + 1e-9)
        << "tau=" << tau;
  }
}

TEST_P(PowerShotProperties, KernelVanishesBeyondDuration) {
  const PowerShot shot(GetParam());
  EXPECT_DOUBLE_EQ(shot.autocov_kernel(kD, kS, kD), 0.0);
  EXPECT_DOUBLE_EQ(shot.autocov_kernel(kD + 1.0, kS, kD), 0.0);
}

TEST_P(PowerShotProperties, KernelIsEvenInTau) {
  const PowerShot shot(GetParam());
  EXPECT_NEAR(shot.autocov_kernel(-0.7, kS, kD),
              shot.autocov_kernel(0.7, kS, kD), 1e-9);
}

TEST_P(PowerShotProperties, KernelIsDecreasing) {
  const PowerShot shot(GetParam());
  double prev = shot.autocov_kernel(0.0, kS, kD);
  for (double tau : {0.2, 0.6, 1.2, 2.0, 2.4}) {
    const double k = shot.autocov_kernel(tau, kS, kD);
    EXPECT_LE(k, prev * (1.0 + 1e-9)) << tau;
    prev = k;
  }
}

TEST_P(PowerShotProperties, PowerIntegralK1IsSize) {
  const PowerShot shot(GetParam());
  EXPECT_NEAR(shot.power_integral(1, kS, kD), kS, 1e-9 * kS);
}

TEST_P(PowerShotProperties, PowerIntegralK2IsEnergy) {
  const PowerShot shot(GetParam());
  EXPECT_NEAR(shot.power_integral(2, kS, kD), shot.energy(kS, kD),
              1e-9 * shot.energy(kS, kD));
}

TEST_P(PowerShotProperties, PowerIntegralK3MatchesQuadrature) {
  const PowerShot shot(GetParam());
  const double direct = integrate(
      [&](double u) { return std::pow(shot.value(u, kS, kD), 3); }, 0.0, kD);
  EXPECT_NEAR(shot.power_integral(3, kS, kD), direct, 1e-6 * direct);
}

TEST_P(PowerShotProperties, FourierAtZeroIsSizeSquared) {
  const PowerShot shot(GetParam());
  EXPECT_NEAR(shot.fourier_mag2(0.0, kS, kD), kS * kS, 1e-5 * kS * kS);
}

TEST_P(PowerShotProperties, FourierDecaysAtHighFrequency) {
  const PowerShot shot(GetParam());
  const double low = shot.fourier_mag2(0.5, kS, kD);
  const double high = shot.fourier_mag2(50.0, kS, kD);
  EXPECT_LT(high, low);
}

INSTANTIATE_TEST_SUITE_P(PowerFamily, PowerShotProperties,
                         ::testing::Values(0.0, 0.5, 1.0, 1.7, 2.0, 3.0),
                         [](const auto& info) {
                           const double b = info.param;
                           return "b" + std::to_string(static_cast<int>(b)) +
                                  "p" +
                                  std::to_string(static_cast<int>(b * 10) %
                                                 10);
                         });

// ----------------------------------------------------------- specific values

TEST(PowerShot, RectangleValueIsMeanRate) {
  const PowerShot rect(0.0);
  EXPECT_DOUBLE_EQ(rect.value(1.0, kS, kD), kS / kD);
}

TEST(PowerShot, TrianglePeaksAtTwiceMeanRate) {
  const PowerShot tri(1.0);
  EXPECT_NEAR(tri.value(kD, kS, kD), 2.0 * kS / kD, 1e-9);
  EXPECT_NEAR(tri.value(kD / 2.0, kS, kD), kS / kD, 1e-9);
}

TEST(PowerShot, VarianceFactors) {
  EXPECT_DOUBLE_EQ(PowerShot(0.0).variance_factor(), 1.0);
  EXPECT_NEAR(PowerShot(1.0).variance_factor(), 4.0 / 3.0, 1e-12);
  EXPECT_NEAR(PowerShot(2.0).variance_factor(), 9.0 / 5.0, 1e-12);
}

TEST(PowerShot, EnergyClosedForm) {
  // b=1: energy = 4/3 * S^2/D.
  EXPECT_NEAR(PowerShot(1.0).energy(kS, kD), 4.0 / 3.0 * kS * kS / kD, 1e-6);
}

TEST(PowerShot, RectangularKernelIsLinear) {
  const PowerShot rect(0.0);
  const double k0 = rect.autocov_kernel(0.0, kS, kD);
  const double kh = rect.autocov_kernel(kD / 2.0, kS, kD);
  EXPECT_NEAR(kh, k0 / 2.0, 1e-9 * k0);
}

TEST(PowerShot, RectangularFourierIsSinc) {
  const PowerShot rect(0.0);
  const double omega = 3.0;
  const double half = omega * kD / 2.0;
  const double sinc = std::sin(half) / half;
  EXPECT_NEAR(rect.fourier_mag2(omega, kS, kD), kS * kS * sinc * sinc,
              1e-6 * kS * kS);
}

TEST(PowerShot, RejectsNegativeB) {
  EXPECT_THROW(PowerShot(-0.5), std::invalid_argument);
}

TEST(PowerShot, PowerIntegralRejectsBadK) {
  EXPECT_THROW((void)PowerShot(1.0).power_integral(0, kS, kD),
               std::invalid_argument);
}

TEST(PowerShot, Names) {
  EXPECT_EQ(PowerShot(0.0).name(), "rectangular (b=0)");
  EXPECT_EQ(PowerShot(1.0).name(), "triangular (b=1)");
  EXPECT_EQ(PowerShot(2.0).name(), "parabolic (b=2)");
  EXPECT_NE(PowerShot(1.5).name().find("power"), std::string::npos);
}

TEST(Factories, ReturnExpectedShots) {
  EXPECT_EQ(rectangular_shot()->name(), "rectangular (b=0)");
  EXPECT_EQ(triangular_shot()->name(), "triangular (b=1)");
  EXPECT_EQ(parabolic_shot()->name(), "parabolic (b=2)");
  EXPECT_EQ(power_shot(2.0)->name(), "parabolic (b=2)");
}

// -------------------------------------------------------------- custom shots

TEST(CustomShot, AcceptsNormalisedProfile) {
  // Symmetric tent profile: g(x) = 4x for x<1/2, 4(1-x) otherwise; mass 1.
  const CustomShot tent(
      [](double x) { return x < 0.5 ? 4.0 * x : 4.0 * (1.0 - x); }, "tent");
  // Even panel count puts the kink on a panel boundary (exact integration).
  const double mass = integrate_panels(
      [&](double u) { return tent.value(u, kS, kD); }, 0.0, kD, 64);
  EXPECT_NEAR(mass, kS, 1e-6 * kS);
  EXPECT_EQ(tent.name(), "tent");
}

TEST(CustomShot, RejectsUnnormalisedProfile) {
  EXPECT_THROW(CustomShot([](double) { return 2.0; }, "bad"),
               std::invalid_argument);
  EXPECT_THROW(CustomShot(nullptr, "null"), std::invalid_argument);
}

TEST(CustomShot, DefaultFunctionalsViaQuadrature) {
  const CustomShot tent(
      [](double x) { return x < 0.5 ? 4.0 * x : 4.0 * (1.0 - x); }, "tent");
  EXPECT_GT(tent.energy(kS, kD), 0.0);
  EXPECT_NEAR(tent.autocov_kernel(0.0, kS, kD), tent.energy(kS, kD),
              1e-6 * tent.energy(kS, kD));
  // Default power_integral uses a single quadrature panel; the tent's kink
  // limits it to ~1e-3 relative accuracy.
  EXPECT_NEAR(tent.power_integral(1, kS, kD), kS, 2e-3 * kS);
}

// Theorem 3 at the shot level: among profiles, the rectangle minimises
// energy (hence variance) for fixed (S, D).
TEST(Theorem3, RectangleMinimisesEnergy) {
  const double rect_energy = PowerShot(0.0).energy(kS, kD);
  for (double b : {0.3, 1.0, 2.0, 4.0}) {
    EXPECT_GT(PowerShot(b).energy(kS, kD), rect_energy) << b;
  }
  const CustomShot tent(
      [](double x) { return x < 0.5 ? 4.0 * x : 4.0 * (1.0 - x); }, "tent");
  EXPECT_GT(tent.energy(kS, kD), rect_energy);
}

}  // namespace
}  // namespace fbm::core
