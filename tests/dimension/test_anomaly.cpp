#include "dimension/anomaly.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace fbm::dimension {
namespace {

stats::RateSeries series_of(std::vector<double> values) {
  stats::RateSeries s;
  s.delta = 0.2;
  s.values = std::move(values);
  return s;
}

TEST(Anomaly, QuietSeriesHasNoEvents) {
  const auto s = series_of(std::vector<double>(100, 100.0));
  EXPECT_TRUE(detect_anomalies(s, 100.0, 10.0).empty());
}

TEST(Anomaly, SustainedSpikeDetected) {
  std::vector<double> v(50, 100.0);
  for (int i = 20; i < 26; ++i) v[i] = 200.0;  // +10 sigma for 6 samples
  const auto events = detect_anomalies(series_of(v), 100.0, 10.0);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].start_index, 20u);
  EXPECT_EQ(events[0].length, 6u);
  EXPECT_EQ(events[0].kind, AnomalyKind::spike);
  EXPECT_NEAR(events[0].peak_deviation_sigma, 10.0, 1e-9);
}

TEST(Anomaly, DropDetectedAsLinkFailure) {
  std::vector<double> v(50, 100.0);
  for (int i = 30; i < 40; ++i) v[i] = 0.0;  // link failure
  const auto events = detect_anomalies(series_of(v), 100.0, 10.0);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, AnomalyKind::drop);
}

TEST(Anomaly, ShortBlipIgnoredByHysteresis) {
  std::vector<double> v(50, 100.0);
  v[10] = 500.0;  // single-sample blip
  v[11] = 500.0;  // two samples < min_consecutive=3
  AnomalyOptions opt;
  opt.min_consecutive = 3;
  EXPECT_TRUE(detect_anomalies(series_of(v), 100.0, 10.0, opt).empty());
}

TEST(Anomaly, OppositeSignsSplitEvents) {
  std::vector<double> v(60, 100.0);
  for (int i = 10; i < 15; ++i) v[i] = 300.0;
  for (int i = 15; i < 20; ++i) v[i] = -100.0;
  const auto events = detect_anomalies(series_of(v), 100.0, 10.0);
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].kind, AnomalyKind::spike);
  EXPECT_EQ(events[1].kind, AnomalyKind::drop);
}

TEST(Anomaly, EventAtSeriesEndIsClosed) {
  std::vector<double> v(20, 100.0);
  for (int i = 16; i < 20; ++i) v[i] = 400.0;
  const auto events = detect_anomalies(series_of(v), 100.0, 10.0);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].start_index, 16u);
  EXPECT_EQ(events[0].length, 4u);
}

TEST(Anomaly, ThresholdScalesWithSigma) {
  std::vector<double> v(30, 100.0);
  for (int i = 5; i < 10; ++i) v[i] = 140.0;  // +4 sigma at sigma=10
  AnomalyOptions tight;
  tight.k_sigma = 3.0;
  AnomalyOptions loose;
  loose.k_sigma = 5.0;
  EXPECT_EQ(detect_anomalies(series_of(v), 100.0, 10.0, tight).size(), 1u);
  EXPECT_TRUE(detect_anomalies(series_of(v), 100.0, 10.0, loose).empty());
}

TEST(Anomaly, Validation) {
  const auto s = series_of({1.0});
  EXPECT_THROW((void)detect_anomalies(s, 0.0, 0.0), std::invalid_argument);
  AnomalyOptions opt;
  opt.k_sigma = 0.0;
  EXPECT_THROW((void)detect_anomalies(s, 0.0, 1.0, opt),
               std::invalid_argument);
  opt = AnomalyOptions{};
  opt.min_consecutive = 0;
  EXPECT_THROW((void)detect_anomalies(s, 0.0, 1.0, opt),
               std::invalid_argument);
}

}  // namespace
}  // namespace fbm::dimension
