#include "dimension/provisioning.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "core/moments.hpp"

namespace fbm::dimension {
namespace {

flow::ModelInputs inputs() {
  flow::ModelInputs in;
  in.lambda = 300.0;
  in.mean_size_bits = 1.6e5;
  in.mean_s2_over_d = 4e9;
  in.flows = 20000;
  return in;
}

TEST(PlanLink, CapacityAboveMean) {
  const auto plan = plan_link(inputs(), 1.0, 0.01);
  EXPECT_GT(plan.capacity_bps, plan.mean_bps);
  EXPECT_GT(plan.headroom, 1.0);
  EXPECT_DOUBLE_EQ(plan.eps, 0.01);
}

TEST(PlanLink, MatchesGaussianFormula) {
  const auto in = inputs();
  const auto plan = plan_link(in, 0.0, 0.05);
  const double sigma = std::sqrt(core::power_shot_variance(in, 0.0));
  // q(0.95) = 1.6449.
  EXPECT_NEAR(plan.capacity_bps, plan.mean_bps + 1.6448536269514722 * sigma,
              1e-3);
}

TEST(PlanLink, StricterEpsNeedsMoreCapacity) {
  const auto strict = plan_link(inputs(), 1.0, 0.001);
  const auto loose = plan_link(inputs(), 1.0, 0.1);
  EXPECT_GT(strict.capacity_bps, loose.capacity_bps);
}

TEST(PlanLink, BurstierShotsNeedMoreCapacity) {
  const auto rect = plan_link(inputs(), 0.0, 0.01);
  const auto para = plan_link(inputs(), 2.0, 0.01);
  EXPECT_GT(para.capacity_bps, rect.capacity_bps);
  EXPECT_DOUBLE_EQ(para.mean_bps, rect.mean_bps);
}

TEST(PlanLink, Validation) {
  EXPECT_THROW((void)plan_link(inputs(), 1.0, 0.0), std::invalid_argument);
  EXPECT_THROW((void)plan_link(inputs(), 1.0, 1.0), std::invalid_argument);
}

TEST(ApplyScenario, LambdaOnly) {
  WhatIf w;
  w.lambda_factor = 3.0;
  const auto out = apply_scenario(inputs(), w);
  EXPECT_DOUBLE_EQ(out.lambda, 900.0);
  EXPECT_DOUBLE_EQ(out.mean_size_bits, inputs().mean_size_bits);
}

TEST(ApplyScenario, SizeScalingIsQuadraticInS2OverD) {
  WhatIf w;
  w.size_factor = 2.0;
  const auto out = apply_scenario(inputs(), w);
  EXPECT_DOUBLE_EQ(out.mean_size_bits, 2.0 * inputs().mean_size_bits);
  EXPECT_DOUBLE_EQ(out.mean_s2_over_d, 4.0 * inputs().mean_s2_over_d);
}

TEST(ApplyScenario, LongerDurationsReduceVariance) {
  WhatIf w;
  w.duration_factor = 4.0;  // congested access: same bytes spread out
  const auto out = apply_scenario(inputs(), w);
  EXPECT_DOUBLE_EQ(out.mean_s2_over_d, inputs().mean_s2_over_d / 4.0);
  EXPECT_DOUBLE_EQ(out.mean_size_bits, inputs().mean_size_bits);
}

TEST(ApplyScenario, Validation) {
  WhatIf w;
  w.lambda_factor = 0.0;
  EXPECT_THROW((void)apply_scenario(inputs(), w), std::invalid_argument);
}

TEST(CapacitySweep, SmoothingLawHolds) {
  // Section VII-A: CoV ~ 1/sqrt(lambda) => headroom shrinks as lambda grows,
  // and capacity grows sublinearly.
  const std::vector<double> factors = {1.0, 4.0, 16.0, 64.0};
  const auto plans = capacity_sweep(inputs(), 1.0, 0.01, factors);
  ASSERT_EQ(plans.size(), 4u);
  for (std::size_t i = 1; i < plans.size(); ++i) {
    EXPECT_LT(plans[i].cov, plans[i - 1].cov);
    EXPECT_LT(plans[i].headroom, plans[i - 1].headroom);
    // Capacity grows strictly slower than lambda.
    EXPECT_LT(plans[i].capacity_bps / plans[i - 1].capacity_bps, 4.0);
  }
  // CoV ratio between 16x steps should be ~1/4 (sqrt scaling twice).
  EXPECT_NEAR(plans[2].cov / plans[0].cov, 0.25, 0.01);
}

}  // namespace
}  // namespace fbm::dimension
