// fbm::engine unit tests: --link spec parsing, match rules, runtime
// attach/detach, per-link config layering, counters, and error paths.
#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "api/api.hpp"

namespace fbm {
namespace {

net::Prefix pfx(const char* addr, int len) {
  return net::Prefix(*net::Ipv4Address::parse(addr), len);
}

net::PacketRecord packet(double ts, net::Ipv4Address dst,
                         std::uint32_t bytes = 1000,
                         std::uint16_t src_port = 1234) {
  net::PacketRecord p;
  p.timestamp = ts;
  p.tuple.src = net::Ipv4Address(172, 16, 0, 1);
  p.tuple.dst = dst;
  p.tuple.src_port = src_port;
  p.tuple.dst_port = 80;
  p.tuple.protocol = 6;
  p.size_bytes = bytes;
  return p;
}

engine::EngineConfig batch_config() {
  engine::EngineConfig config;
  config.mode = engine::EngineMode::batch;
  config.analysis.interval_s(10.0).timeout_s(1.0).min_flows(0);
  return config;
}

// ---------------------------------------------------------- link specs ---

TEST(LinkSpec, ParsesPrefixList) {
  const auto spec = engine::parse_link_spec("core=10.0.0.0/8,192.168.1.0/24");
  EXPECT_EQ(spec.name, "core");
  const auto& match = std::get<engine::MatchPrefixes>(spec.rule);
  ASSERT_EQ(match.prefixes.size(), 2u);
  EXPECT_EQ(match.prefixes[0].to_string(), "10.0.0.0/8");
  EXPECT_EQ(match.prefixes[1].to_string(), "192.168.1.0/24");
}

TEST(LinkSpec, BareAddressGetsHostPrefix) {
  const auto spec = engine::parse_link_spec("host=192.0.2.7");
  const auto& match = std::get<engine::MatchPrefixes>(spec.rule);
  ASSERT_EQ(match.prefixes.size(), 1u);
  EXPECT_EQ(match.prefixes[0].to_string(), "192.0.2.7/32");
}

TEST(LinkSpec, ParsesMatchAll) {
  EXPECT_TRUE(std::holds_alternative<engine::MatchAll>(
      engine::parse_link_spec("tap=all").rule));
  EXPECT_TRUE(std::holds_alternative<engine::MatchAll>(
      engine::parse_link_spec("tap=*").rule));
}

TEST(LinkSpec, RejectsMalformedSpecs) {
  EXPECT_THROW((void)engine::parse_link_spec("noequals"),
               std::invalid_argument);
  EXPECT_THROW((void)engine::parse_link_spec("=10.0.0.0/8"),
               std::invalid_argument);
  EXPECT_THROW((void)engine::parse_link_spec("x="), std::invalid_argument);
  EXPECT_THROW((void)engine::parse_link_spec("x=10.0.0.0/33"),
               std::invalid_argument);
  EXPECT_THROW((void)engine::parse_link_spec("x=10.0.0/8"),
               std::invalid_argument);
  EXPECT_THROW((void)engine::parse_link_spec("x=10.0.0.0/8,,10.1.0.0/16"),
               std::invalid_argument);
}

TEST(LinkSpec, TuplePredicateMatchesSetFieldsOnly) {
  engine::MatchTuple rule;
  rule.protocol = 17;
  rule.dst_prefix = pfx("10.0.0.0", 8);
  net::FiveTuple t;
  t.protocol = 17;
  t.dst = net::Ipv4Address(10, 1, 2, 3);
  EXPECT_TRUE(rule.matches(t));
  t.protocol = 6;
  EXPECT_FALSE(rule.matches(t));
  t.protocol = 17;
  t.dst = net::Ipv4Address(11, 1, 2, 3);
  EXPECT_FALSE(rule.matches(t));
  EXPECT_TRUE(engine::MatchTuple{}.matches(t));  // empty predicate
}

// -------------------------------------------------------------- engine ---

TEST(Engine, RejectsBadConfigAndSpecs) {
  {
    // threads == 0 is not bad — it auto-detects the core count (see
    // test_threads_auto.cpp).
    engine::EngineConfig config = batch_config();
    config.threads = 0;
    EXPECT_NO_THROW(engine::Engine e(config));
  }
  engine::Engine eng(batch_config());
  EXPECT_THROW((void)eng.attach({}), std::invalid_argument);  // empty name
  engine::LinkSpec empty_prefixes;
  empty_prefixes.name = "empty";
  empty_prefixes.rule = engine::MatchPrefixes{};
  EXPECT_THROW((void)eng.attach(empty_prefixes), std::invalid_argument);

  (void)eng.attach(engine::parse_link_spec("a=10.0.0.0/8"));
  EXPECT_THROW((void)eng.attach(engine::parse_link_spec("a=11.0.0.0/8")),
               std::invalid_argument);  // duplicate name
  EXPECT_THROW((void)eng.attach(engine::parse_link_spec("b=10.0.0.0/8")),
               std::invalid_argument);  // prefix already claimed
  // The failed attach rolled back: the claim still routes to "a", and "b"
  // can attach with a free prefix.
  (void)eng.attach(engine::parse_link_spec("b=11.0.0.0/8"));
  eng.push(packet(0.0, net::Ipv4Address(10, 1, 1, 1)));
  eng.push(packet(0.1, net::Ipv4Address(10, 1, 1, 1)));
  eng.finish();
  const auto links = eng.links();
  ASSERT_EQ(links.size(), 2u);
  EXPECT_EQ(links[0].name, "a");
  EXPECT_EQ(links[0].counters.packets, 2u);
  EXPECT_EQ(links[1].counters.packets, 0u);
}

TEST(Engine, DemuxCountersSplitTraffic) {
  engine::Engine eng(batch_config());
  const auto a = eng.attach(engine::parse_link_spec("a=10.0.0.0/16"));
  const auto b = eng.attach(engine::parse_link_spec("b=10.1.0.0/16"));
  const auto tap = eng.attach(engine::parse_link_spec("tap=all"));
  eng.push(packet(0.0, net::Ipv4Address(10, 0, 0, 1), 100));
  eng.push(packet(0.1, net::Ipv4Address(10, 1, 0, 1), 200));
  eng.push(packet(0.2, net::Ipv4Address(10, 2, 0, 1), 400));  // unmatched
  eng.finish();
  const auto links = eng.links();
  ASSERT_EQ(links.size(), 3u);
  EXPECT_EQ(links[0].id, a);
  EXPECT_EQ(links[0].counters.packets, 1u);
  EXPECT_EQ(links[0].counters.bytes, 100u);
  EXPECT_EQ(links[1].id, b);
  EXPECT_EQ(links[1].counters.packets, 1u);
  EXPECT_EQ(links[1].counters.bytes, 200u);
  EXPECT_EQ(links[2].id, tap);
  EXPECT_EQ(links[2].counters.packets, 3u);
  EXPECT_EQ(links[2].counters.bytes, 700u);
  EXPECT_EQ(eng.summary().packets, 3u);
}

TEST(Engine, RuntimeAttachSeesOnlyLaterPackets) {
  engine::Engine eng(batch_config());
  (void)eng.attach(engine::parse_link_spec("early=all"));
  eng.push(packet(0.0, net::Ipv4Address(10, 0, 0, 1)));
  (void)eng.attach(engine::parse_link_spec("late=all"));
  eng.push(packet(0.5, net::Ipv4Address(10, 0, 0, 1)));
  eng.finish();
  const auto links = eng.links();
  EXPECT_EQ(links[0].counters.packets, 2u);
  EXPECT_EQ(links[1].counters.packets, 1u);
}

TEST(Engine, DetachFinalizesSessionAndStopsRouting) {
  engine::Engine eng(batch_config());
  const auto id = eng.attach(engine::parse_link_spec("a=10.0.0.0/8"));
  (void)eng.attach(engine::parse_link_spec("tap=all"));

  std::vector<engine::LinkReport> reports;
  eng.set_report_sink(
      [&](engine::LinkReport&& r) { reports.push_back(std::move(r)); });

  eng.push(packet(0.0, net::Ipv4Address(10, 0, 0, 1)));
  eng.push(packet(1.0, net::Ipv4Address(10, 0, 0, 1)));
  ASSERT_TRUE(eng.detach(id));
  // Detach finalized the session: its interval 0 report is already out.
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_EQ(reports[0].name, "a");
  ASSERT_TRUE(reports[0].interval.has_value());
  EXPECT_EQ(reports[0].interval->inputs.flows, 1u);

  EXPECT_FALSE(eng.detach(id));       // already detached
  EXPECT_FALSE(eng.detach(9999));     // unknown id
  EXPECT_EQ(eng.link_count(), 1u);

  eng.push(packet(2.0, net::Ipv4Address(10, 0, 0, 1)));
  eng.finish();
  const auto links = eng.links();
  EXPECT_FALSE(links[0].attached);
  EXPECT_EQ(links[0].counters.packets, 2u);  // nothing after detach
  EXPECT_EQ(links[1].counters.packets, 3u);
  // After detach the overlap is gone: a fresh link can claim the prefix.
  // (attach after finish is rejected below instead.)
  EXPECT_THROW((void)eng.attach(engine::parse_link_spec("a2=10.0.0.0/8")),
               std::logic_error);
}

TEST(Engine, DetachedPrefixBecomesClaimable) {
  engine::Engine eng(batch_config());
  const auto id = eng.attach(engine::parse_link_spec("a=10.0.0.0/8"));
  ASSERT_TRUE(eng.detach(id));
  const auto id2 = eng.attach(engine::parse_link_spec("a=10.0.0.0/8"));
  EXPECT_NE(id, id2);  // ids are never reused
  eng.push(packet(0.0, net::Ipv4Address(10, 0, 0, 1)));
  eng.finish();
  const auto links = eng.links();
  EXPECT_EQ(links[1].counters.packets, 1u);
}

TEST(Engine, PerLinkOverridesLayerOverBase) {
  engine::EngineConfig config = batch_config();
  config.analysis.min_flows(100);  // base suppresses everything
  engine::Engine eng(config);
  engine::LinkSpec verbose;
  verbose.name = "verbose";
  verbose.rule = engine::MatchAll{};
  verbose.tune_analysis = [](api::AnalysisConfig& cfg) { cfg.min_flows(0); };
  (void)eng.attach(verbose);
  (void)eng.attach(engine::parse_link_spec("quiet=all"));

  eng.push(packet(0.0, net::Ipv4Address(10, 0, 0, 1)));
  eng.push(packet(1.0, net::Ipv4Address(10, 0, 0, 1)));
  eng.finish();
  const auto reports = eng.take_reports();
  // Only the tuned link reports: the base min_flows(100) still governs the
  // other session.
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_EQ(reports[0].name, "verbose");
}

TEST(Engine, OrderingAndLifecycleErrors) {
  engine::Engine eng(batch_config());
  (void)eng.attach(engine::parse_link_spec("tap=all"));
  eng.push(packet(1.0, net::Ipv4Address(10, 0, 0, 1)));
  EXPECT_THROW(eng.push(packet(0.5, net::Ipv4Address(10, 0, 0, 1))),
               std::invalid_argument);
  eng.finish();
  eng.finish();  // idempotent
  EXPECT_THROW(eng.push(packet(2.0, net::Ipv4Address(10, 0, 0, 1))),
               std::logic_error);
}

TEST(Engine, InvalidLayeredConfigRejectedAtAttach) {
  engine::Engine eng(batch_config());
  engine::LinkSpec broken;
  broken.name = "broken";
  broken.tune_analysis = [](api::AnalysisConfig& cfg) { cfg.timeout_s(-1.0); };
  EXPECT_THROW((void)eng.attach(broken), std::invalid_argument);
  EXPECT_EQ(eng.link_count(), 0u);
}

TEST(Engine, LiveModeEmitsTaggedWindows) {
  engine::EngineConfig config;
  config.mode = engine::EngineMode::live;
  config.live.window_s = 1.0;
  config.live.analysis.timeout_s(0.5);
  engine::Engine eng(config);
  (void)eng.attach(engine::parse_link_spec("tap=all"));
  for (int i = 0; i < 40; ++i) {
    eng.push(packet(0.1 * i, net::Ipv4Address(10, 0, 0, 1)));
  }
  eng.finish();
  const auto reports = eng.take_reports();
  ASSERT_GE(reports.size(), 3u);
  for (const auto& r : reports) {
    EXPECT_EQ(r.name, "tap");
    ASSERT_TRUE(r.window.has_value());
    const std::string line = engine::to_jsonl(r);
    EXPECT_EQ(line.rfind("{\"link\": \"tap\", \"window\": ", 0), 0u) << line;
  }
}

}  // namespace
}  // namespace fbm
