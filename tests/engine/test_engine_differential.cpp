// The differential proof behind fbm::engine (ISSUE 5 acceptance): for every
// attached link, the engine's report stream is bit-for-bit identical to
// running the ordinary single-link pipeline on that link's pre-filtered
// packets — across link-set shapes (disjoint prefixes, overlapping prefixes
// with longest-match, predicates + match-all), in both batch
// (api::analyze) and live (live::WindowedEstimator) modes, and for any
// worker-pool size.
//
// The reference filter is computed here by brute force (linear scan over
// every link's prefixes, longest match wins), sharing no code with the
// engine's RoutingTable demux.
#include <gtest/gtest.h>

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "api/api.hpp"
#include "trace/synthetic.hpp"

namespace fbm {
namespace {

std::vector<net::PacketRecord> seeded_trace(double duration_s = 60.0,
                                            double util_bps = 8e6,
                                            std::uint64_t seed = 515) {
  trace::SyntheticConfig cfg;
  cfg.duration_s = duration_s;
  cfg.apply_defaults();
  cfg.target_utilization_bps(util_bps);
  cfg.seed = seed;
  return trace::generate_packets(cfg);
}

net::Prefix pfx(const char* addr, int len) {
  return net::Prefix(*net::Ipv4Address::parse(addr), len);
}

struct LinkDef {
  std::string name;
  engine::LinkSpec spec;
  /// Reference rule, evaluated by brute force.
  std::vector<net::Prefix> prefixes;  ///< empty + !all => tuple predicate
  bool all = false;
  std::optional<engine::MatchTuple> tuple;
};

LinkDef prefix_link(std::string name, std::vector<net::Prefix> prefixes) {
  LinkDef def;
  def.name = name;
  def.spec.name = std::move(name);
  def.spec.rule = engine::MatchPrefixes{prefixes};
  def.prefixes = std::move(prefixes);
  return def;
}

LinkDef all_link(std::string name) {
  LinkDef def;
  def.name = name;
  def.spec.name = std::move(name);
  def.spec.rule = engine::MatchAll{};
  def.all = true;
  return def;
}

LinkDef tuple_link(std::string name, engine::MatchTuple predicate) {
  LinkDef def;
  def.name = name;
  def.spec.name = std::move(name);
  def.spec.rule = predicate;
  def.tuple = predicate;
  return def;
}

/// Independent demux: every packet goes to each match-all link, to each
/// matching predicate link, and to the one prefix link holding the longest
/// prefix (across ALL links) that contains its destination.
std::map<std::string, std::vector<net::PacketRecord>> reference_split(
    const std::vector<net::PacketRecord>& packets,
    const std::vector<LinkDef>& links) {
  std::map<std::string, std::vector<net::PacketRecord>> out;
  for (const auto& link : links) out[link.name];  // empty streams included
  for (const auto& p : packets) {
    const LinkDef* best = nullptr;
    int best_len = -1;
    for (const auto& link : links) {
      if (link.all) {
        out[link.name].push_back(p);
        continue;
      }
      if (link.tuple) {
        if (link.tuple->matches(p.tuple)) out[link.name].push_back(p);
        continue;
      }
      for (const auto& prefix : link.prefixes) {
        if (prefix.contains(p.tuple.dst) && prefix.length() > best_len) {
          best = &link;
          best_len = prefix.length();
        }
      }
    }
    if (best != nullptr) out[best->name].push_back(p);
  }
  return out;
}

// Link-set shapes the acceptance criterion names. Destinations of the
// synthetic trace live in 10.<0..7>.<16k>.0/24 space.
std::vector<LinkDef> disjoint_links() {
  std::vector<LinkDef> links;
  links.push_back(prefix_link("a", {pfx("10.0.0.0", 15)}));
  links.push_back(prefix_link("b", {pfx("10.2.0.0", 15)}));
  links.push_back(prefix_link("c", {pfx("10.4.0.0", 16), pfx("10.5.0.0", 16)}));
  links.push_back(all_link("tap"));  // aggregate rides along
  return links;
}

std::vector<LinkDef> overlapping_links() {
  // "wide" claims everything; more-specific links carve traffic out of it
  // via longest-match, nesting three levels deep.
  std::vector<LinkDef> links;
  links.push_back(prefix_link("wide", {pfx("10.0.0.0", 8)}));
  links.push_back(prefix_link("mid", {pfx("10.2.0.0", 15)}));
  links.push_back(prefix_link("narrow", {pfx("10.2.64.0", 18)}));
  return links;
}

std::vector<LinkDef> predicate_links() {
  std::vector<LinkDef> links;
  engine::MatchTuple web;
  web.dst_port = 80;
  links.push_back(tuple_link("web", web));
  engine::MatchTuple udp;
  udp.protocol = 17;
  links.push_back(tuple_link("udp", udp));
  links.push_back(prefix_link("lowhalf", {pfx("10.0.0.0", 14)}));
  return links;
}

// --------------------------------------------------------------- batch ---

api::AnalysisConfig batch_config() {
  api::AnalysisConfig cfg;
  cfg.interval_s(10.0).timeout_s(2.0).min_flows(0);
  return cfg;
}

void run_batch_differential(const std::vector<LinkDef>& links,
                            std::size_t threads) {
  const auto packets = seeded_trace();
  const auto split = reference_split(packets, links);

  engine::EngineConfig config;
  config.mode = engine::EngineMode::batch;
  config.analysis = batch_config();
  config.threads = threads;
  engine::Engine eng(config);
  std::map<std::string, std::vector<api::AnalysisReport>> got;
  eng.set_report_sink([&](engine::LinkReport&& r) {
    ASSERT_TRUE(r.interval.has_value());
    got[r.name].push_back(std::move(*r.interval));
  });
  for (const auto& link : links) eng.attach(link.spec);
  for (const auto& p : packets) eng.push(p);
  eng.finish();

  for (const auto& link : links) {
    SCOPED_TRACE(link.name);
    const auto& filtered = split.at(link.name);
    const auto expected = api::analyze(filtered, batch_config());
    const auto& actual = got[link.name];
    ASSERT_EQ(expected.size(), actual.size());
    for (std::size_t i = 0; i < expected.size(); ++i) {
      SCOPED_TRACE(i);
      // Bit-for-bit: the full JSON rendering (shortest-round-trip doubles)
      // must match byte for byte.
      EXPECT_EQ(api::to_json(expected[i]), api::to_json(actual[i]));
    }
  }
}

TEST(EngineDifferential, BatchDisjointPrefixes) {
  run_batch_differential(disjoint_links(), 1);
}

TEST(EngineDifferential, BatchOverlappingPrefixesLongestMatch) {
  run_batch_differential(overlapping_links(), 1);
}

TEST(EngineDifferential, BatchPredicatesAndPrefixes) {
  run_batch_differential(predicate_links(), 1);
}

TEST(EngineDifferential, BatchWorkerPoolMatchesInline) {
  run_batch_differential(disjoint_links(), 3);
  run_batch_differential(overlapping_links(), 3);
}

// ---------------------------------------------------------------- live ---

live::LiveConfig live_config(double width, double stride) {
  live::LiveConfig cfg;
  cfg.window_s = width;
  cfg.stride_s = stride;
  cfg.analysis.timeout_s(2.0);
  return cfg;
}

void run_live_differential(const std::vector<LinkDef>& links,
                           double width, double stride, std::size_t threads) {
  const auto packets = seeded_trace();
  const auto split = reference_split(packets, links);

  engine::EngineConfig config;
  config.mode = engine::EngineMode::live;
  config.live = live_config(width, stride);
  config.threads = threads;
  engine::Engine eng(config);
  std::map<std::string, std::vector<std::string>> got;
  eng.set_report_sink([&](engine::LinkReport&& r) {
    ASSERT_TRUE(r.window.has_value());
    got[r.name].push_back(live::to_jsonl(*r.window));
  });
  for (const auto& link : links) eng.attach(link.spec);
  for (const auto& p : packets) eng.push(p);
  eng.finish();

  for (const auto& link : links) {
    SCOPED_TRACE(link.name);
    const auto& filtered = split.at(link.name);
    live::WindowedEstimator reference(live_config(width, stride));
    for (const auto& p : filtered) reference.push(p);
    reference.finish();
    const auto expected = reference.take_reports();
    const auto& actual = got[link.name];
    ASSERT_EQ(expected.size(), actual.size());
    for (std::size_t i = 0; i < expected.size(); ++i) {
      SCOPED_TRACE(i);
      EXPECT_EQ(live::to_jsonl(expected[i]), actual[i]);
    }
  }
}

TEST(EngineDifferential, LiveDisjointPrefixesTiling) {
  run_live_differential(disjoint_links(), 7.0, 0.0, 1);
}

TEST(EngineDifferential, LiveOverlappingPrefixesTiling) {
  run_live_differential(overlapping_links(), 7.0, 0.0, 1);
}

TEST(EngineDifferential, LiveOverlappingWindowsAndPrefixes) {
  run_live_differential(overlapping_links(), 9.0, 4.0, 1);
}

TEST(EngineDifferential, LiveWorkerPoolMatchesInline) {
  run_live_differential(disjoint_links(), 7.0, 0.0, 3);
}

}  // namespace
}  // namespace fbm
