// Schema stability of the multi-link fbm_live --link JSONL output: the live
// schema (live/window_report.hpp) with "link" prepended. Pinned with the
// shared tests/support/json_fields.hpp reader, as the single-link schema is
// in tests/live/test_live_jsonl_schema.cpp.
//
// The EngineJsonl* tests double as the CI validator: the engine-smoke job
// runs fbm_live with three --link specs over the golden trace and re-runs
// this test with FBM_ENGINE_JSONL pointing at the captured output.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "api/api.hpp"
#include "../support/json_fields.hpp"
#include "trace/synthetic.hpp"

namespace fbm {
namespace {

const std::vector<std::string>& expected_keys() {
  static const std::vector<std::string> keys{
      "link",
      "window", "start_s", "width_s", "stride_s", "packets", "bytes",
      "discards",
      "flows", "count", "lambda_per_s", "mean_size_bits",
      "mean_s2_over_d_bits2_per_s", "mean_duration_s", "stddev_size_bits",
      "stddev_duration_s", "mean_rate_bps",
      "measured", "samples", "mean_bps", "variance_bps2", "cov",
      "model", "shot_b_fitted", "shot_b_used", "mean_bps", "stddev_bps",
      "cov",
      "provisioning", "eps", "capacity_bps", "headroom",
      "forecast", "predicted_mean_bps", "band_low_bps", "band_high_bps",
      "sigma_bps", "order",
      "anomaly", "alert", "kind", "deviation_sigma", "consecutive",
      "bin_events", "bin_peak_sigma"};
  return keys;
}

void expect_schema(const std::string& line) {
  const auto fields = testsupport::parse_fields(line);
  const auto& keys = expected_keys();
  ASSERT_EQ(fields.size(), keys.size()) << line;
  for (std::size_t i = 0; i < fields.size(); ++i) {
    EXPECT_EQ(fields[i].key, keys[i]) << "field " << i;
    EXPECT_FALSE(fields[i].value.empty()) << fields[i].key;
  }
}

TEST(EngineJsonl, LinkFieldLeadsAndEscapes) {
  live::WindowReport report;
  const std::string line = live::to_jsonl(report, "core east");
  EXPECT_EQ(line.find('\n'), std::string::npos);
  expect_schema(line);
  const auto fields = testsupport::parse_fields(line);
  EXPECT_EQ(fields[0].key, "link");
  EXPECT_EQ(fields[0].value, "\"core east\"");
  // The remainder is byte-identical to the single-link line.
  const std::string plain = live::to_jsonl(report);
  EXPECT_EQ(line.substr(line.find(", \"window\"") + 2), plain.substr(1));
  // A hostile link name is escaped (json_fields can't parse escapes, so
  // compare the rendered prefix directly).
  const std::string hostile = live::to_jsonl(report, "od\"d\\name");
  EXPECT_EQ(hostile.rfind("{\"link\": \"od\\\"d\\\\name\", \"window\"", 0),
            0u)
      << hostile;
}

TEST(EngineJsonl, EngineOutputMatchesSchema) {
  trace::SyntheticConfig cfg;
  cfg.duration_s = 20.0;
  cfg.apply_defaults();
  cfg.target_utilization_bps(4e6);
  cfg.seed = 99;
  const auto packets = trace::generate_packets(cfg);

  engine::EngineConfig config;
  config.mode = engine::EngineMode::live;
  config.live.window_s = 5.0;
  config.live.analysis.timeout_s(2.0);
  engine::Engine eng(config);
  (void)eng.attach(engine::parse_link_spec("low=10.0.0.0/15"));
  (void)eng.attach(engine::parse_link_spec("tap=all"));
  for (const auto& p : packets) eng.push(p);
  eng.finish();
  const auto reports = eng.take_reports();
  ASSERT_GE(reports.size(), 6u);
  for (const auto& r : reports) {
    SCOPED_TRACE(r.name);
    expect_schema(engine::to_jsonl(r));
  }
}

/// CI hook: validate a captured multi-link fbm_live --json run, line by
/// line (engine-smoke sets FBM_ENGINE_JSONL). Windows must be contiguous
/// per link.
TEST(EngineJsonl, ValidatesCapturedFile) {
  const char* path = std::getenv("FBM_ENGINE_JSONL");
  if (path == nullptr) GTEST_SKIP() << "FBM_ENGINE_JSONL not set";
  std::ifstream in(path);
  ASSERT_TRUE(in) << path;
  std::string line;
  std::size_t lines = 0;
  std::map<std::string, std::size_t> next_window;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    SCOPED_TRACE(lines);
    expect_schema(line);
    const auto fields = testsupport::parse_fields(line);
    const std::string& link = fields[0].value;
    const auto window =
        static_cast<std::size_t>(std::stoul(fields[1].value));
    EXPECT_EQ(window, next_window[link]) << link;  // contiguous per link
    next_window[link] = window + 1;
    ++lines;
  }
  EXPECT_GT(lines, 0u);
  EXPECT_GE(next_window.size(), 3u) << "expected 3 links in the smoke run";
}

}  // namespace
}  // namespace fbm
