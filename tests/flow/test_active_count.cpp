#include "flow/active_count.hpp"

#include <gtest/gtest.h>

#include "stats/rng.hpp"

namespace fbm::flow {
namespace {

FlowRecord flow(double start, double duration) {
  FlowRecord f;
  f.start = start;
  f.end = start + duration;
  f.size_bytes = 1000;
  f.packets = 2;
  return f;
}

TEST(ActiveFlowSeries, Validation) {
  std::vector<FlowRecord> flows;
  EXPECT_THROW((void)active_flow_series(flows, 1.0, 1.0, 0.1),
               std::invalid_argument);
  EXPECT_THROW((void)active_flow_series(flows, 0.0, 1.0, 0.0),
               std::invalid_argument);
}

TEST(ActiveFlowSeries, SingleFlowCoversItsBins) {
  std::vector<FlowRecord> flows = {flow(1.0, 2.0)};  // active [1, 3)
  const auto n = active_flow_series(flows, 0.0, 5.0, 1.0);
  // Midpoints 0.5, 1.5, 2.5, 3.5, 4.5.
  ASSERT_EQ(n.values.size(), 5u);
  EXPECT_DOUBLE_EQ(n.values[0], 0.0);
  EXPECT_DOUBLE_EQ(n.values[1], 1.0);
  EXPECT_DOUBLE_EQ(n.values[2], 1.0);
  EXPECT_DOUBLE_EQ(n.values[3], 0.0);
}

TEST(ActiveFlowSeries, OverlappingFlowsAdd) {
  std::vector<FlowRecord> flows = {flow(0.0, 3.0), flow(1.0, 3.0),
                                   flow(2.0, 3.0)};
  const auto n = active_flow_series(flows, 0.0, 6.0, 1.0);
  EXPECT_DOUBLE_EQ(n.values[0], 1.0);  // t=0.5
  EXPECT_DOUBLE_EQ(n.values[1], 2.0);  // t=1.5
  EXPECT_DOUBLE_EQ(n.values[2], 3.0);  // t=2.5
  EXPECT_DOUBLE_EQ(n.values[3], 2.0);  // t=3.5: first ended at 3.0
}

TEST(ActiveFlowSeries, ShortFlowBetweenMidpointsIsInvisible) {
  std::vector<FlowRecord> flows = {flow(0.6, 0.2)};  // [0.6, 0.8)
  const auto n = active_flow_series(flows, 0.0, 2.0, 1.0);
  // Midpoints at 0.5, 1.5: the flow covers neither.
  EXPECT_DOUBLE_EQ(n.values[0], 0.0);
  EXPECT_DOUBLE_EQ(n.values[1], 0.0);
}

TEST(ActiveFlowSeries, MGInfinityOccupancyIsPoisson) {
  // Poisson arrivals + iid exponential durations: N(t) ~ Poisson(lambda E[D])
  // with dispersion (variance/mean) ~ 1.
  stats::Rng rng(13);
  const double lambda = 200.0;
  const double mean_d = 0.5;
  std::vector<FlowRecord> flows;
  double t = 0.0;
  while (t < 300.0) {
    t += rng.exponential(lambda);
    flows.push_back(flow(t, rng.exponential(1.0 / mean_d)));
  }
  // Skip warm-up: sample [10, 290).
  const auto n = active_flow_series(flows, 10.0, 290.0, 0.05);
  const auto s = active_flow_stats(n);
  EXPECT_NEAR(s.mean, lambda * mean_d, 0.05 * lambda * mean_d);
  EXPECT_NEAR(s.dispersion, 1.0, 0.25);
}

TEST(ActiveFlowStats, EmptySeries) {
  stats::RateSeries empty;
  const auto s = active_flow_stats(empty);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
  EXPECT_DOUBLE_EQ(s.dispersion, 0.0);
}

}  // namespace
}  // namespace fbm::flow
