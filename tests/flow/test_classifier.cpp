#include "flow/classifier.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace fbm::flow {
namespace {

net::PacketRecord packet(double ts, std::uint16_t src_port = 1000,
                         std::uint32_t bytes = 100,
                         std::uint8_t dst_last_octet = 1) {
  net::PacketRecord p;
  p.timestamp = ts;
  p.tuple.src = net::Ipv4Address(10, 0, 0, 1);
  p.tuple.dst = net::Ipv4Address(20, 0, 0, dst_last_octet);
  p.tuple.src_port = src_port;
  p.tuple.dst_port = 80;
  p.tuple.protocol = 6;
  p.size_bytes = bytes;
  return p;
}

TEST(Classifier, GroupsPacketsOfSameTuple) {
  FiveTupleClassifier c;
  c.add(packet(0.0));
  c.add(packet(1.0));
  c.add(packet(2.5));
  c.flush();
  ASSERT_EQ(c.flows().size(), 1u);
  const FlowRecord& f = c.flows()[0];
  EXPECT_DOUBLE_EQ(f.start, 0.0);
  EXPECT_DOUBLE_EQ(f.end, 2.5);
  EXPECT_DOUBLE_EQ(f.duration(), 2.5);
  EXPECT_EQ(f.size_bytes, 300u);
  EXPECT_EQ(f.packets, 3u);
}

TEST(Classifier, DistinctTuplesAreDistinctFlows) {
  FiveTupleClassifier c;
  c.add(packet(0.0, 1000));
  c.add(packet(0.1, 2000));
  c.flush();
  EXPECT_EQ(c.counters().single_packet_discards, 2u);
  EXPECT_TRUE(c.flows().empty());  // both single-packet
}

TEST(Classifier, TimeoutSplitsFlow) {
  ClassifierOptions opt;
  opt.timeout = 60.0;
  FiveTupleClassifier c(opt);
  c.add(packet(0.0));
  c.add(packet(10.0));
  c.add(packet(100.0));  // > 60 s gap: new flow
  c.add(packet(101.0));
  c.flush();
  ASSERT_EQ(c.flows().size(), 2u);
  EXPECT_DOUBLE_EQ(c.flows()[0].duration(), 10.0);
  EXPECT_DOUBLE_EQ(c.flows()[1].start, 100.0);
}

TEST(Classifier, GapExactlyAtTimeoutDoesNotSplit) {
  FiveTupleClassifier c;
  c.add(packet(0.0));
  c.add(packet(60.0));  // exactly the timeout: same flow
  c.flush();
  ASSERT_EQ(c.flows().size(), 1u);
  EXPECT_EQ(c.flows()[0].packets, 2u);
}

TEST(Classifier, SinglePacketFlowDiscardedByDefault) {
  FiveTupleClassifier c;
  c.add(packet(0.0));
  c.flush();
  EXPECT_TRUE(c.flows().empty());
  EXPECT_EQ(c.counters().single_packet_discards, 1u);
}

TEST(Classifier, SinglePacketFlowKeptWhenConfigured) {
  ClassifierOptions opt;
  opt.discard_single_packet = false;
  FiveTupleClassifier c(opt);
  c.add(packet(0.0));
  c.flush();
  ASSERT_EQ(c.flows().size(), 1u);
  EXPECT_DOUBLE_EQ(c.flows()[0].duration(), 0.0);
}

TEST(Classifier, RecordsDiscardedPackets) {
  ClassifierOptions opt;
  opt.record_discards = true;
  FiveTupleClassifier c(opt);
  c.add(packet(3.0, 1000, 77));
  c.flush();
  ASSERT_EQ(c.discards().size(), 1u);
  EXPECT_DOUBLE_EQ(c.discards()[0].timestamp, 3.0);
  EXPECT_EQ(c.discards()[0].size_bytes, 77u);
}

TEST(Classifier, IntervalBoundarySplitsAndFlags) {
  ClassifierOptions opt;
  opt.interval = 10.0;
  FiveTupleClassifier c(opt);
  c.add(packet(8.0));
  c.add(packet(9.0));
  c.add(packet(11.0));  // next interval: piece 2, continued
  c.add(packet(12.0));
  c.flush();
  ASSERT_EQ(c.flows().size(), 2u);
  EXPECT_FALSE(c.flows()[0].continued);
  EXPECT_TRUE(c.flows()[1].continued);
  EXPECT_DOUBLE_EQ(c.flows()[1].start, 11.0);
  EXPECT_EQ(c.counters().boundary_splits, 1u);
}

TEST(Classifier, NegativeTimestampsUseFlooredIntervalIndex) {
  // Truncation toward zero would lump [-10, 10) into one interval index 0;
  // floor puts -5 into index -1, so crossing zero splits the flow.
  ClassifierOptions opt;
  opt.interval = 10.0;
  FiveTupleClassifier c(opt);
  c.add(packet(-5.0));
  c.add(packet(-1.0));
  c.add(packet(1.0));  // index -1 -> 0: boundary split
  c.add(packet(5.0));
  c.flush();
  ASSERT_EQ(c.flows().size(), 2u);
  EXPECT_DOUBLE_EQ(c.flows()[0].start, -5.0);
  EXPECT_DOUBLE_EQ(c.flows()[0].end, -1.0);
  EXPECT_FALSE(c.flows()[0].continued);
  EXPECT_TRUE(c.flows()[1].continued);
  EXPECT_DOUBLE_EQ(c.flows()[1].start, 1.0);
  EXPECT_EQ(c.counters().boundary_splits, 1u);
}

TEST(Classifier, NegativeBoundaryMultipleStartsItsOwnInterval) {
  // floor(-10 / 10) = -1 exactly: a packet at the boundary belongs to the
  // interval it opens, mirroring the non-negative convention.
  ClassifierOptions opt;
  opt.interval = 10.0;
  FiveTupleClassifier c(opt);
  c.add(packet(-12.0));  // index -2
  c.add(packet(-10.0));  // index -1: split exactly at the multiple
  c.add(packet(-9.0));
  c.flush();
  ASSERT_EQ(c.flows().size(), 2u);
  EXPECT_DOUBLE_EQ(c.flows()[1].start, -10.0);
  EXPECT_EQ(c.flows()[1].packets, 2u);
}

TEST(Classifier, ExactBoundaryMultipleStartsItsOwnInterval) {
  ClassifierOptions opt;
  opt.interval = 10.0;
  FiveTupleClassifier c(opt);
  c.add(packet(9.0));
  c.add(packet(9.5));
  c.add(packet(10.0));  // exactly k * interval: the next interval
  c.add(packet(10.5));
  c.flush();
  ASSERT_EQ(c.flows().size(), 2u);
  EXPECT_DOUBLE_EQ(c.flows()[1].start, 10.0);
  EXPECT_EQ(c.counters().boundary_splits, 1u);
}

TEST(Classifier, SinglePacketContinuationPieceKept) {
  // The paper discards single-packet *flows*; a one-packet continuation
  // piece belongs to a multi-packet flow, so it must survive.
  ClassifierOptions opt;
  opt.interval = 10.0;
  FiveTupleClassifier c(opt);
  c.add(packet(8.0));
  c.add(packet(9.0));
  c.add(packet(11.0));  // lone packet of piece 2
  c.flush();
  ASSERT_EQ(c.flows().size(), 2u);
  EXPECT_TRUE(c.flows()[1].continued);
  EXPECT_EQ(c.flows()[1].packets, 1u);
  EXPECT_EQ(c.counters().single_packet_discards, 0u);
}

TEST(Classifier, SinglePacketLeadPieceKeptWhenFlowContinues) {
  // Two-packet flow straddling the boundary: both one-packet pieces belong
  // to a two-packet flow and are kept.
  ClassifierOptions opt;
  opt.interval = 10.0;
  FiveTupleClassifier c(opt);
  c.add(packet(9.0));
  c.add(packet(11.0));
  c.flush();
  ASSERT_EQ(c.flows().size(), 2u);
  EXPECT_FALSE(c.flows()[0].continued);
  EXPECT_TRUE(c.flows()[1].continued);
  EXPECT_EQ(c.counters().single_packet_discards, 0u);
}

TEST(Classifier, TrueSinglePacketFlowStillDiscardedAcrossIntervals) {
  // An isolated packet with no continuation on either side stays a
  // single-packet flow and is discarded as before.
  ClassifierOptions opt;
  opt.interval = 10.0;
  opt.timeout = 5.0;
  FiveTupleClassifier c(opt);
  c.add(packet(9.0));
  c.add(packet(19.0));  // gap 10 > timeout: NOT a continuation
  c.add(packet(19.5));
  c.flush();
  ASSERT_EQ(c.flows().size(), 1u);  // the {19.0, 19.5} flow
  EXPECT_EQ(c.counters().single_packet_discards, 1u);
}

TEST(Classifier, TimeoutAcrossBoundaryIsNotContinuation) {
  ClassifierOptions opt;
  opt.interval = 10.0;
  opt.timeout = 5.0;
  FiveTupleClassifier c(opt);
  c.add(packet(1.0));
  c.add(packet(2.0));
  c.add(packet(19.0));  // gap 17 > timeout AND crossed: plain new flow
  c.add(packet(19.5));
  c.flush();
  ASSERT_EQ(c.flows().size(), 2u);
  EXPECT_FALSE(c.flows()[1].continued);
}

TEST(Classifier, RejectsOutOfOrderPackets) {
  FiveTupleClassifier c;
  c.add(packet(5.0));
  EXPECT_THROW(c.add(packet(4.0)), std::invalid_argument);
}

TEST(Classifier, OptionValidation) {
  ClassifierOptions opt;
  opt.timeout = 0.0;
  EXPECT_THROW(FiveTupleClassifier{opt}, std::invalid_argument);
  opt = ClassifierOptions{};
  opt.interval = -1.0;
  EXPECT_THROW(FiveTupleClassifier{opt}, std::invalid_argument);
}

TEST(Classifier, PrefixKeyAggregatesAcrossPorts) {
  Prefix24Classifier c;
  // Same /24 destination, different 5-tuples.
  c.add(packet(0.0, 1000, 100, 1));
  c.add(packet(1.0, 2000, 100, 2));
  c.add(packet(2.0, 3000, 100, 3));
  c.flush();
  ASSERT_EQ(c.flows().size(), 1u);
  EXPECT_EQ(c.flows()[0].packets, 3u);
  EXPECT_EQ(c.flows()[0].size_bytes, 300u);
}

TEST(Classifier, PrefixKeySeparatesDifferentPrefixes) {
  Prefix24Classifier c;
  auto p1 = packet(0.0);
  auto p2 = packet(0.5);
  p2.tuple.dst = net::Ipv4Address(30, 0, 1, 1);  // other /24
  c.add(p1);
  c.add(p2);
  c.add(packet(1.0));
  auto p4 = packet(1.5);
  p4.tuple.dst = net::Ipv4Address(30, 0, 1, 9);
  c.add(p4);
  c.flush();
  EXPECT_EQ(c.flows().size(), 2u);
}

TEST(Classifier, CustomPrefixLengthEight) {
  FlowClassifier<PrefixKey<8>> c;
  auto p1 = packet(0.0);
  auto p2 = packet(0.5);
  p2.tuple.dst = net::Ipv4Address(20, 99, 99, 99);  // same /8
  c.add(p1);
  c.add(p2);
  c.flush();
  ASSERT_EQ(c.flows().size(), 1u);
}

TEST(Classifier, ExpireIdleEmitsOnlyStaleFlows) {
  ClassifierOptions opt;
  opt.timeout = 10.0;
  FiveTupleClassifier c(opt);
  c.add(packet(0.0, 1000));
  c.add(packet(1.0, 1000));
  c.add(packet(5.0, 2000));
  c.add(packet(6.0, 2000));
  c.expire_idle(12.0);  // flow A idle 11 s > 10; flow B idle 6 s
  ASSERT_EQ(c.flows().size(), 1u);
  EXPECT_DOUBLE_EQ(c.flows()[0].end, 1.0);
  EXPECT_EQ(c.active_flows(), 1u);
}

TEST(Classifier, ExpireIdleThenFlushCoversEverything) {
  FiveTupleClassifier c;
  c.add(packet(0.0, 1000));
  c.add(packet(0.5, 1000));
  c.expire_idle(1000.0);
  c.flush();
  EXPECT_EQ(c.flows().size(), 1u);  // not emitted twice
}

TEST(Classifier, ActiveFlowsTracked) {
  FiveTupleClassifier c;
  c.add(packet(0.0, 1000));
  c.add(packet(0.1, 2000));
  EXPECT_EQ(c.active_flows(), 2u);
  c.flush();
  EXPECT_EQ(c.active_flows(), 0u);
}

TEST(Classifier, CountersPacketsTotal) {
  FiveTupleClassifier c;
  for (int i = 0; i < 5; ++i) c.add(packet(0.1 * i));
  c.flush();
  EXPECT_EQ(c.counters().packets, 5u);
  EXPECT_EQ(c.counters().flows_emitted, 1u);
}

TEST(ClassifyAll, SortsFlowsByStartTime) {
  std::vector<net::PacketRecord> packets;
  // Flow B starts later but ends (times out) earlier than flow A's end.
  packets.push_back(packet(0.0, 1000));
  packets.push_back(packet(0.5, 2000));
  packets.push_back(packet(1.0, 2000));
  packets.push_back(packet(70.0, 1000));   // still flow A? gap 70 > 60: no
  packets.push_back(packet(70.5, 1000));
  ClassifierCounters counters;
  const auto flows =
      classify_all<FiveTupleKey>(packets, ClassifierOptions{}, &counters);
  ASSERT_EQ(flows.size(), 2u);
  EXPECT_LE(flows[0].start, flows[1].start);
  EXPECT_EQ(counters.packets, 5u);
}

TEST(Classifier, RoutableKeyGroupsByFibEntry) {
  net::RoutingTable fib;
  fib.insert(net::Prefix(net::Ipv4Address(20, 0, 0, 0), 8), 1);
  fib.insert(net::Prefix(net::Ipv4Address(30, 1, 0, 0), 16), 2);

  FlowClassifier<RoutableKey> c(RoutableKey(&fib), ClassifierOptions{});
  // Two destinations inside 20/8 -> one flow; one in 30.1/16 -> another.
  auto p1 = packet(0.0);
  p1.tuple.dst = net::Ipv4Address(20, 5, 5, 5);
  auto p2 = packet(0.5);
  p2.tuple.dst = net::Ipv4Address(20, 200, 1, 1);
  auto p3 = packet(1.0);
  p3.tuple.dst = net::Ipv4Address(30, 1, 7, 7);
  auto p4 = packet(1.5);
  p4.tuple.dst = net::Ipv4Address(30, 1, 8, 8);
  c.add(p1);
  c.add(p2);
  c.add(p3);
  c.add(p4);
  c.flush();
  EXPECT_EQ(c.flows().size(), 2u);
}

TEST(Classifier, RoutableKeyFallsBackToSlash24) {
  net::RoutingTable fib;  // empty: nothing routable
  RoutableKey key(&fib);
  auto p = packet(0.0);
  p.tuple.dst = net::Ipv4Address(99, 1, 2, 3);
  EXPECT_EQ(key(p), net::Prefix(net::Ipv4Address(99, 1, 2, 0), 24));
}

TEST(Classifier, RoutableKeyRejectsNullTable) {
  EXPECT_THROW(RoutableKey{nullptr}, std::invalid_argument);
}

TEST(FlowRecord, MeanRate) {
  FlowRecord f;
  f.start = 0.0;
  f.end = 2.0;
  f.size_bytes = 1000;
  EXPECT_DOUBLE_EQ(f.mean_rate_bps(), 4000.0);
  f.end = 0.0;
  EXPECT_DOUBLE_EQ(f.mean_rate_bps(), 0.0);
}

}  // namespace
}  // namespace fbm::flow
