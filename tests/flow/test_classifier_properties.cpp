// Property sweeps over the flow classifier: conservation and consistency
// invariants that must hold for any trace and any (timeout, interval)
// configuration, under every key definition.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "flow/classifier.hpp"
#include "trace/synthetic.hpp"

namespace fbm::flow {
namespace {

// (timeout, interval, prefix aggregation?)
using Param = std::tuple<double, double, bool>;

class ClassifierInvariants : public ::testing::TestWithParam<Param> {
 protected:
  static const std::vector<net::PacketRecord>& packets() {
    static const auto p = [] {
      trace::SyntheticConfig cfg;
      cfg.duration_s = 30.0;
      cfg.flow_rate = 120.0;
      cfg.apply_defaults();
      cfg.seed = 99;
      return trace::generate_packets(cfg);
    }();
    return p;
  }

  struct Result {
    std::vector<FlowRecord> flows;
    std::vector<DiscardedPacket> discards;
    ClassifierCounters counters;
  };

  [[nodiscard]] Result classify() const {
    const auto [timeout, interval, prefix] = GetParam();
    ClassifierOptions opt;
    opt.timeout = timeout;
    opt.interval = interval;
    opt.record_discards = true;
    Result r;
    if (prefix) {
      Prefix24Classifier c(opt);
      for (const auto& p : packets()) c.add(p);
      c.flush();
      r.discards = c.discards();
      r.counters = c.counters();
      r.flows = c.take_flows();
    } else {
      FiveTupleClassifier c(opt);
      for (const auto& p : packets()) c.add(p);
      c.flush();
      r.discards = c.discards();
      r.counters = c.counters();
      r.flows = c.take_flows();
    }
    return r;
  }
};

TEST_P(ClassifierInvariants, BytesAreConserved) {
  const auto r = classify();
  std::uint64_t flow_bytes = 0;
  for (const auto& f : r.flows) flow_bytes += f.size_bytes;
  std::uint64_t discard_bytes = 0;
  for (const auto& d : r.discards) discard_bytes += d.size_bytes;
  std::uint64_t packet_bytes = 0;
  for (const auto& p : packets()) packet_bytes += p.size_bytes;
  EXPECT_EQ(flow_bytes + discard_bytes, packet_bytes);
}

TEST_P(ClassifierInvariants, PacketsAreConserved) {
  const auto r = classify();
  std::uint64_t flow_packets = 0;
  for (const auto& f : r.flows) flow_packets += f.packets;
  EXPECT_EQ(flow_packets + r.discards.size(), packets().size());
  EXPECT_EQ(r.counters.packets, packets().size());
}

TEST_P(ClassifierInvariants, EveryFlowIsWellFormed) {
  const auto r = classify();
  const auto [timeout, interval, prefix] = GetParam();
  for (const auto& f : r.flows) {
    EXPECT_GE(f.duration(), 0.0);
    // Single-packet *flows* are discarded; single-packet *pieces* of a
    // boundary-split flow are kept. A surviving single must therefore be a
    // continuation piece, or a lead piece whose flow resumes across the
    // next boundary (its last packet within `timeout` of that boundary).
    if (f.packets < 2u && !f.continued) {
      ASSERT_TRUE(std::isfinite(interval));
      const auto start_idx = std::floor(f.start / interval);
      const double next_boundary = (start_idx + 1.0) * interval;
      EXPECT_LT(next_boundary - f.end, timeout)
          << "isolated single-packet flow survived: " << f.start;
    }
    EXPECT_GT(f.size_bytes, 0u);
    // A flow piece never spans more than one analysis interval.
    if (std::isfinite(interval)) {
      const auto start_idx = static_cast<long>(f.start / interval);
      // End may touch the boundary of the same interval.
      EXPECT_LE(f.end, (start_idx + 1) * interval + timeout)
          << f.start << " " << f.end;
    }
  }
}

TEST_P(ClassifierInvariants, NoIntraFlowGapExceedsTimeout) {
  // The classifier guarantee: packets more than `timeout` apart are split.
  // Verify via the flow records: duration <= packets * timeout (each
  // consecutive gap <= timeout).
  const auto r = classify();
  const auto [timeout, interval, prefix] = GetParam();
  for (const auto& f : r.flows) {
    EXPECT_LE(f.duration(),
              static_cast<double>(f.packets - 1) * timeout + 1e-9);
  }
}

TEST_P(ClassifierInvariants, CountersMatchOutputs) {
  const auto r = classify();
  EXPECT_EQ(r.counters.flows_emitted, r.flows.size());
  EXPECT_EQ(r.counters.single_packet_discards, r.discards.size());
}

TEST_P(ClassifierInvariants, ContinuedOnlyWithFiniteInterval) {
  const auto r = classify();
  const auto [timeout, interval, prefix] = GetParam();
  std::size_t continued = 0;
  for (const auto& f : r.flows) {
    if (f.continued) ++continued;
  }
  if (!std::isfinite(interval)) {
    EXPECT_EQ(continued, 0u);
  }
  // boundary_splits counts continuation pieces at creation; those that stay
  // single-packet are discarded before emission, so the emitted `continued`
  // count can only be smaller, and the gap is bounded by the discards.
  EXPECT_LE(continued, r.counters.boundary_splits);
  EXPECT_LE(r.counters.boundary_splits - continued,
            r.counters.single_packet_discards);
}

TEST_P(ClassifierInvariants, DeterministicAcrossRuns) {
  const auto a = classify();
  const auto b = classify();
  ASSERT_EQ(a.flows.size(), b.flows.size());
  for (std::size_t i = 0; i < a.flows.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.flows[i].start, b.flows[i].start);
    EXPECT_EQ(a.flows[i].size_bytes, b.flows[i].size_bytes);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ClassifierInvariants,
    ::testing::Combine(
        ::testing::Values(0.5, 5.0, 60.0),
        ::testing::Values(10.0, 30.0,
                          std::numeric_limits<double>::infinity()),
        ::testing::Bool()),
    [](const auto& info) {
      // std::get instead of structured bindings: a comma inside [] would be
      // parsed as a macro-argument separator by INSTANTIATE_TEST_SUITE_P.
      const double timeout = std::get<0>(info.param);
      const double interval = std::get<1>(info.param);
      std::string name = "t";
      name += std::to_string(static_cast<int>(timeout * 10));
      name += "_i";
      name += std::isfinite(interval)
                  ? std::to_string(static_cast<int>(interval))
                  : std::string("inf");
      name += std::get<2>(info.param) ? "_p24" : "_5t";
      return name;
    });

}  // namespace
}  // namespace fbm::flow
