#include "flow/flow_stats.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "stats/rng.hpp"

namespace fbm::flow {
namespace {

// Builds a Poisson-arrival flow population with iid sizes/durations — the
// model's Assumptions 1 and 2 hold by construction.
std::vector<FlowRecord> poisson_population(std::size_t n, double lambda,
                                           std::uint64_t seed) {
  stats::Rng rng(seed);
  std::vector<FlowRecord> flows;
  double t = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    t += rng.exponential(lambda);
    FlowRecord f;
    f.start = t;
    f.end = t + rng.exponential(0.5);
    f.size_bytes = static_cast<std::uint64_t>(1 + rng.exponential(1.0 / 2e4));
    f.packets = 2;
    flows.push_back(f);
  }
  return flows;
}

TEST(Diagnostics, TinyPopulationIsSafe) {
  std::vector<FlowRecord> flows(2);
  const auto d = diagnose_population(flows);
  EXPECT_EQ(d.flows, 2u);
  EXPECT_TRUE(d.interarrival_qq.empty());
}

TEST(Diagnostics, PoissonPopulationLooksExponential) {
  const auto flows = poisson_population(20000, 100.0, 3);
  const auto d = diagnose_population(flows);
  EXPECT_EQ(d.flows, 20000u);
  // qq-plot straight (normalised axes): rms deviation small.
  EXPECT_LT(stats::qq_rms_deviation(d.interarrival_qq), 0.08);
  // KS does not reject wildly.
  EXPECT_LT(d.interarrival_ks.statistic, 0.02);
}

TEST(Diagnostics, PoissonPopulationIsUncorrelated) {
  const auto flows = poisson_population(20000, 100.0, 4);
  const auto d = diagnose_population(flows);
  ASSERT_EQ(d.interarrival_acf.size(), 21u);
  EXPECT_DOUBLE_EQ(d.interarrival_acf[0], 1.0);
  for (std::size_t lag = 1; lag <= 20; ++lag) {
    EXPECT_LT(std::abs(d.interarrival_acf[lag]), 3.0 * d.white_noise_band)
        << lag;
    EXPECT_LT(std::abs(d.size_acf[lag]), 3.0 * d.white_noise_band) << lag;
    EXPECT_LT(std::abs(d.duration_acf[lag]), 3.0 * d.white_noise_band) << lag;
  }
}

TEST(Diagnostics, PeriodicArrivalsAreNotExponential) {
  std::vector<FlowRecord> flows;
  for (int i = 0; i < 5000; ++i) {
    FlowRecord f;
    f.start = i * 0.01;  // deterministic arrivals
    f.end = f.start + 0.5;
    f.size_bytes = 1000;
    f.packets = 2;
    flows.push_back(f);
  }
  const auto d = diagnose_population(flows);
  EXPECT_GT(d.interarrival_ks.statistic, 0.3);
}

TEST(Diagnostics, CorrelatedSizesAreDetected) {
  stats::Rng rng(5);
  std::vector<FlowRecord> flows;
  double t = 0.0;
  double s = 1e4;
  for (int i = 0; i < 10000; ++i) {
    t += rng.exponential(100.0);
    s = 0.95 * s + 0.05 * rng.exponential(1.0 / 1e4);  // AR(1) sizes
    FlowRecord f;
    f.start = t;
    f.end = t + 0.5;
    f.size_bytes = static_cast<std::uint64_t>(1 + s);
    f.packets = 2;
    flows.push_back(f);
  }
  const auto d = diagnose_population(flows);
  EXPECT_GT(d.size_acf[1], 0.5);  // strong lag-1 correlation
}

TEST(Diagnostics, ContinuedFlowsCounted) {
  auto flows = poisson_population(100, 10.0, 6);
  flows[3].continued = true;
  flows[7].continued = true;
  const auto d = diagnose_population(flows);
  EXPECT_EQ(d.continued, 2u);
}

}  // namespace
}  // namespace fbm::flow
