#include "flow/interval.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace fbm::flow {
namespace {

FlowRecord flow(double start, double duration, std::uint64_t bytes,
                bool continued = false) {
  FlowRecord f;
  f.start = start;
  f.end = start + duration;
  f.size_bytes = bytes;
  f.packets = 2;
  f.continued = continued;
  return f;
}

TEST(GroupByInterval, AssignsByStartTime) {
  std::vector<FlowRecord> flows = {flow(1.0, 2.0, 100), flow(11.0, 2.0, 100),
                                   flow(9.999, 0.5, 100)};
  const auto intervals = group_by_interval(flows, 10.0, 20.0);
  ASSERT_EQ(intervals.size(), 2u);
  EXPECT_EQ(intervals[0].flows.size(), 2u);
  EXPECT_EQ(intervals[1].flows.size(), 1u);
  EXPECT_DOUBLE_EQ(intervals[0].start, 0.0);
  EXPECT_DOUBLE_EQ(intervals[1].start, 10.0);
  EXPECT_DOUBLE_EQ(intervals[1].end(), 20.0);
}

TEST(GroupByInterval, KeepsEmptyIntervals) {
  std::vector<FlowRecord> flows = {flow(25.0, 1.0, 10)};
  const auto intervals = group_by_interval(flows, 10.0, 30.0);
  ASSERT_EQ(intervals.size(), 3u);
  EXPECT_TRUE(intervals[0].flows.empty());
  EXPECT_TRUE(intervals[1].flows.empty());
  EXPECT_EQ(intervals[2].flows.size(), 1u);
}

TEST(GroupByInterval, DropsFlowsBeyondHorizon) {
  std::vector<FlowRecord> flows = {flow(35.0, 1.0, 10), flow(-1.0, 1.0, 10)};
  const auto intervals = group_by_interval(flows, 10.0, 30.0);
  for (const auto& iv : intervals) EXPECT_TRUE(iv.flows.empty());
}

TEST(GroupByInterval, SortsWithinInterval) {
  std::vector<FlowRecord> flows = {flow(5.0, 1.0, 10), flow(2.0, 1.0, 10),
                                   flow(8.0, 1.0, 10)};
  const auto intervals = group_by_interval(flows, 10.0, 10.0);
  ASSERT_EQ(intervals.size(), 1u);
  EXPECT_DOUBLE_EQ(intervals[0].flows[0].start, 2.0);
  EXPECT_DOUBLE_EQ(intervals[0].flows[2].start, 8.0);
}

TEST(GroupByInterval, Validation) {
  std::vector<FlowRecord> flows;
  EXPECT_THROW((void)group_by_interval(flows, 0.0, 10.0),
               std::invalid_argument);
  EXPECT_THROW((void)group_by_interval(flows, 10.0, 0.0),
               std::invalid_argument);
}

TEST(EstimateInputs, ThreeParameters) {
  IntervalData iv;
  iv.start = 0.0;
  iv.length = 10.0;
  iv.flows = {flow(0.0, 2.0, 1000), flow(1.0, 4.0, 2000)};
  const ModelInputs in = estimate_inputs(iv);
  EXPECT_EQ(in.flows, 2u);
  EXPECT_DOUBLE_EQ(in.lambda, 0.2);
  EXPECT_DOUBLE_EQ(in.mean_size_bits, (8000.0 + 16000.0) / 2.0);
  const double e1 = 8000.0 * 8000.0 / 2.0;
  const double e2 = 16000.0 * 16000.0 / 4.0;
  EXPECT_DOUBLE_EQ(in.mean_s2_over_d, (e1 + e2) / 2.0);
  EXPECT_DOUBLE_EQ(in.mean_rate_bps(), 0.2 * 12000.0);
}

TEST(EstimateInputs, EmptyIntervalIsZero) {
  IntervalData iv;
  iv.length = 10.0;
  const ModelInputs in = estimate_inputs(iv);
  EXPECT_DOUBLE_EQ(in.lambda, 0.0);
  EXPECT_EQ(in.flows, 0u);
}

TEST(EstimateInputs, MinDurationGuard) {
  IntervalData iv;
  iv.length = 10.0;
  iv.flows = {flow(0.0, 1e-9, 1000)};  // near-zero duration
  const ModelInputs in = estimate_inputs(iv, 1e-3);
  // Duration clamped to 1 ms.
  EXPECT_DOUBLE_EQ(in.mean_s2_over_d, 8000.0 * 8000.0 / 1e-3);
}

TEST(InterarrivalTimes, Differences) {
  IntervalData iv;
  iv.length = 10.0;
  iv.flows = {flow(1.0, 1.0, 10), flow(3.0, 1.0, 10), flow(3.5, 1.0, 10)};
  const auto gaps = interarrival_times(iv);
  ASSERT_EQ(gaps.size(), 2u);
  EXPECT_DOUBLE_EQ(gaps[0], 2.0);
  EXPECT_DOUBLE_EQ(gaps[1], 0.5);
}

TEST(InterarrivalTimes, FewFlowsGiveEmpty) {
  IntervalData iv;
  iv.flows = {flow(1.0, 1.0, 10)};
  EXPECT_TRUE(interarrival_times(iv).empty());
}

TEST(SeriesExtraction, SizesAndDurations) {
  IntervalData iv;
  iv.flows = {flow(0.0, 2.0, 100), flow(1.0, 3.0, 200)};
  const auto sizes = sizes_bytes(iv);
  const auto durs = durations_s(iv);
  ASSERT_EQ(sizes.size(), 2u);
  EXPECT_DOUBLE_EQ(sizes[1], 200.0);
  EXPECT_DOUBLE_EQ(durs[0], 2.0);
}

TEST(CumulativeArrivals, StepFunction) {
  IntervalData iv;
  iv.start = 0.0;
  iv.length = 10.0;
  iv.flows = {flow(0.5, 1.0, 10), flow(1.5, 1.0, 10), flow(1.8, 1.0, 10),
              flow(9.5, 1.0, 10)};
  const auto cum = cumulative_arrivals(iv, 1.0);
  // cum[i] counts arrivals strictly before i*step... by construction at
  // index floor(rel/step)+1.
  ASSERT_EQ(cum.size(), 11u);
  EXPECT_EQ(cum[0], 0u);
  EXPECT_EQ(cum[1], 1u);   // the 0.5 arrival
  EXPECT_EQ(cum[2], 3u);   // + 1.5, 1.8
  EXPECT_EQ(cum[10], 4u);  // everything
}

TEST(CumulativeArrivals, RelativeToIntervalStart) {
  IntervalData iv;
  iv.start = 100.0;
  iv.length = 10.0;
  iv.flows = {flow(100.5, 1.0, 10)};
  const auto cum = cumulative_arrivals(iv, 1.0);
  EXPECT_EQ(cum[1], 1u);
}

TEST(CumulativeArrivals, Validation) {
  IntervalData iv;
  EXPECT_THROW((void)cumulative_arrivals(iv, 0.0), std::invalid_argument);
}

TEST(ContinuedCount, CountsFlaggedFlows) {
  IntervalData iv;
  iv.flows = {flow(0.0, 1.0, 10, true), flow(1.0, 1.0, 10, false),
              flow(2.0, 1.0, 10, true)};
  EXPECT_EQ(continued_count(iv), 2u);
}

}  // namespace
}  // namespace fbm::flow
