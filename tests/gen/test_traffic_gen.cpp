#include "gen/traffic_gen.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "core/moments.hpp"
#include "stats/autocorrelation.hpp"
#include "stats/descriptive.hpp"

namespace fbm::gen {
namespace {

GeneratorConfig parametric_config(double b = 1.0) {
  GeneratorConfig cfg;
  cfg.duration_s = 400.0;
  cfg.lambda = 150.0;
  cfg.delta_s = 0.2;
  cfg.shot = core::power_shot(b);
  cfg.size_bits = std::make_shared<stats::LogNormal>(
      stats::LogNormal::from_mean_cv(1.6e5, 1.5));
  cfg.duration_s_dist = std::make_shared<stats::LogNormal>(
      stats::LogNormal::from_mean_cv(2.0, 1.0));
  return cfg;
}

TEST(Generator, Validation) {
  GeneratorConfig cfg;  // no distributions, no pool
  EXPECT_THROW((void)generate(cfg), std::invalid_argument);
  cfg = parametric_config();
  cfg.duration_s = 0.0;
  EXPECT_THROW((void)generate(cfg), std::invalid_argument);
  cfg = parametric_config();
  cfg.lambda = 0.0;
  EXPECT_THROW((void)generate(cfg), std::invalid_argument);
  cfg = parametric_config();
  cfg.delta_s = 0.0;
  EXPECT_THROW((void)generate(cfg), std::invalid_argument);
}

TEST(Generator, SeriesShapeMatchesConfig) {
  const auto out = generate(parametric_config());
  EXPECT_EQ(out.series.values.size(), 2000u);
  EXPECT_DOUBLE_EQ(out.series.delta, 0.2);
  EXPECT_GT(out.flows, 0u);
}

TEST(Generator, Deterministic) {
  const auto a = generate(parametric_config());
  const auto b = generate(parametric_config());
  ASSERT_EQ(a.series.values.size(), b.series.values.size());
  EXPECT_EQ(a.flows, b.flows);
  for (std::size_t i = 0; i < a.series.values.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.series.values[i], b.series.values[i]) << i;
  }
}

TEST(Generator, MeanMatchesCorollary1) {
  const auto cfg = parametric_config();
  const auto out = generate(cfg);
  const double expected = cfg.lambda * cfg.size_bits->mean();
  // Warm-up bias (empty link at t=0) plus sampling noise: 10% tolerance.
  EXPECT_NEAR(stats::mean(out.series.values), expected, 0.10 * expected);
}

TEST(Generator, VarianceOrderingAcrossShots) {
  // The generated traffic's variance must increase with shot power b
  // (Theorem 3 / Corollary 2), on identical arrivals and sizes.
  auto rect = parametric_config(0.0);
  auto para = parametric_config(2.0);
  const double var_rect =
      stats::population_variance(generate(rect).series.values);
  const double var_para =
      stats::population_variance(generate(para).series.values);
  EXPECT_GT(var_para, 1.15 * var_rect);
}

TEST(Generator, VarianceNearCorollary2) {
  auto cfg = parametric_config(1.0);
  cfg.duration_s = 1200.0;
  const auto out = generate(cfg);
  // Model prediction using the exact same (S, D) population law:
  // E[S^2/D] for independent S, D: E[S^2] * E[1/D]. Estimate by sampling.
  stats::Rng rng(99);
  double e_s2_over_d = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double s = std::max(1.0, cfg.size_bits->sample(rng));
    const double d = std::max(1e-3, cfg.duration_s_dist->sample(rng));
    e_s2_over_d += s * s / d / n;
  }
  const double predicted = cfg.lambda * 4.0 / 3.0 * e_s2_over_d;
  const double measured = stats::population_variance(out.series.values);
  // Heavy-tailed S^2/D converges slowly; accept the right order and 40%.
  EXPECT_NEAR(measured, predicted, 0.4 * predicted);
}

TEST(Generator, EmpiricalPoolIsResampled) {
  GeneratorConfig cfg;
  cfg.duration_s = 100.0;
  cfg.lambda = 50.0;
  cfg.shot = core::rectangular_shot();
  cfg.resample_pool = {{8e4, 1.0}, {1.6e5, 2.0}};
  const auto out = generate(cfg);
  EXPECT_GT(out.flows, 0u);
  const double mean_size = (8e4 + 1.6e5) / 2.0;
  EXPECT_NEAR(stats::mean(out.series.values), cfg.lambda * mean_size,
              0.15 * cfg.lambda * mean_size);
}

TEST(Generator, FromModelClonesPopulationAndShot) {
  std::vector<core::FlowSample> pool = {{1e5, 1.0}, {2e5, 0.5}, {4e4, 2.0}};
  const core::ShotNoiseModel model(80.0, pool, core::parabolic_shot());
  const auto cfg = from_model(model, 50.0);
  EXPECT_DOUBLE_EQ(cfg.lambda, 80.0);
  EXPECT_EQ(cfg.resample_pool.size(), 3u);
  EXPECT_EQ(cfg.shot->name(), "parabolic (b=2)");
  const auto out = generate(cfg);
  EXPECT_GT(out.flows, 0u);
}

TEST(Generator, BurstyArrivalsRaiseVariance) {
  auto poisson = parametric_config(0.0);
  auto bursty = parametric_config(0.0);
  bursty.modulation.high_factor = 2.5;
  bursty.modulation.low_factor = 0.1;
  bursty.modulation.mean_sojourn_s = 10.0;
  const auto a = generate(poisson);
  const auto b = generate(bursty);
  EXPECT_GT(stats::population_variance(b.series.values),
            1.5 * stats::population_variance(a.series.values));
}

TEST(Generator, AutocorrelationDecaysOverFlowDuration) {
  auto cfg = parametric_config(1.0);
  cfg.duration_s = 600.0;
  const auto out = generate(cfg);
  const auto acf = stats::autocorrelation_series(out.series.values, 100);
  // Mean duration 2 s = 10 bins: correlation at lag 1 strong, at lag 100
  // (20 s) weak.
  EXPECT_GT(acf[1], 0.3);
  EXPECT_LT(std::abs(acf[100]), 0.25);
  EXPECT_GT(acf[1], acf[50]);
}

TEST(ArrivalModulation, PoissonDetection) {
  ArrivalModulation m;
  EXPECT_TRUE(m.is_poisson());
  m.high_factor = 2.0;
  EXPECT_FALSE(m.is_poisson());
}

}  // namespace
}  // namespace fbm::gen
