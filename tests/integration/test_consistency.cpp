// Cross-module consistency: the same quantity computed through independent
// code paths must agree. These identities tie Theorem 1 (transform),
// Theorem 2 (covariance/spectrum), the generator, and the numeric inversion
// together — if any one implementation drifts, a pair of these tests
// disagrees.
#include <gtest/gtest.h>

#include <cmath>
#include <complex>

#include "core/distribution.hpp"
#include "core/model.hpp"
#include "core/quadrature.hpp"
#include "gen/traffic_gen.hpp"
#include "stats/autocorrelation.hpp"
#include "stats/descriptive.hpp"
#include "stats/rng.hpp"
#include "stats/spectrum.hpp"

namespace fbm {
namespace {

std::vector<core::FlowSample> population(std::size_t n, std::uint64_t seed) {
  stats::Rng rng(seed);
  std::vector<core::FlowSample> out;
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back({8.0 * (300.0 + rng.exponential(1.0 / 4e4)),
                   0.1 + rng.exponential(0.8)});
  }
  return out;
}

core::ShotNoiseModel model() {
  return core::ShotNoiseModel(150.0, population(1500, 21),
                              core::triangular_shot());
}

// Spectrum-integral identities use the rectangular shot: its Fourier
// magnitude is closed-form (sinc^2), so the omega sweep is cheap; the
// identity itself is shot-independent. A reduced population keeps the
// O(omega-grid x samples) cost test-sized.
core::ShotNoiseModel rect_model() {
  return core::ShotNoiseModel(150.0, population(300, 22),
                              core::rectangular_shot());
}

TEST(Consistency, SpectralDensityIntegratesToVariance) {
  // Wiener-Khinchin at tau=0: integral of Gamma(omega) over the real line
  // equals Var(R). Gamma is even; integrate [0, W] with W past the decay.
  const auto m = rect_model();
  const double w_max = 2000.0;  // rad/s; sinc^2 tails decay like 1/w^2
  const double integral = core::integrate_panels(
      [&](double w) { return m.spectral_density(w); }, 0.0, w_max, 256);
  // The 1/w^2 tail beyond w_max carries a few percent of the mass.
  EXPECT_NEAR(2.0 * integral, m.variance(), 0.05 * m.variance());
}

TEST(Consistency, AutocovarianceIsFourierTransformOfSpectrum) {
  // r(tau) = integral Gamma(omega) e^{i omega tau} d omega (even functions:
  // 2 * int_0^inf Gamma cos(omega tau)).
  const auto m = rect_model();
  for (double tau : {0.1, 0.3}) {
    const double via_spectrum =
        2.0 * core::integrate_panels(
                  [&](double w) {
                    return m.spectral_density(w) * std::cos(w * tau);
                  },
                  0.0, 2000.0, 256);
    const double direct = m.autocovariance(tau);
    EXPECT_NEAR(via_spectrum, direct, 0.05 * m.variance()) << tau;
  }
}

TEST(Consistency, LstAndCharacteristicFunctionShareTheExponent) {
  // phi(omega) = LST(-i omega): at a small real argument, |phi(omega)|
  // and LST(s) must both follow exp(-lambda E[...]) with matched second
  // order: -log|phi(w)| ~ Var * w^2 / 2 ~ -log(LST(s)) - mean*s at s=w.
  const auto m = model();
  const double w = 1e-8;
  const auto phi = core::characteristic_function(m, w, 4096);
  const double log_mag = -std::log(std::abs(phi));
  EXPECT_NEAR(log_mag, m.variance() * w * w / 2.0,
              0.05 * m.variance() * w * w / 2.0 + 1e-18);
  // Imaginary phase slope gives the mean.
  EXPECT_NEAR(std::arg(phi) / w, m.mean_rate(), 0.01 * m.mean_rate());
}

TEST(Consistency, GeneratorMatchesModelMoments) {
  // The generator simulates the model's own process; the realised series
  // moments must agree with Corollaries 1-2 within sampling error.
  const auto m = model();
  auto cfg = gen::from_model(m, 2000.0, 0.05);
  cfg.seed = 31337;
  const auto out = gen::generate(cfg);
  // Discard warm-up (empty link at t=0).
  std::span<const double> tail(out.series.values);
  tail = tail.subspan(200);
  EXPECT_NEAR(stats::mean(tail), m.mean_rate(), 0.05 * m.mean_rate());
  EXPECT_NEAR(stats::population_variance(tail), m.averaged_variance(0.05),
              0.15 * m.variance());
}

TEST(Consistency, GeneratorAcfMatchesTheorem2) {
  const auto m = model();
  auto cfg = gen::from_model(m, 3000.0, 0.1);
  cfg.seed = 91;
  const auto out = gen::generate(cfg);
  const auto empirical = stats::autocorrelation_series(out.series.values, 20);
  std::vector<double> taus;
  for (std::size_t k = 0; k <= 20; ++k) {
    taus.push_back(0.1 * static_cast<double>(k));
  }
  const auto analytic = m.autocorrelation(taus);
  for (std::size_t k : {1u, 3u, 6u, 10u}) {
    EXPECT_NEAR(empirical[k], analytic[k], 0.08) << k;
  }
}

TEST(Consistency, GeneratorHistogramMatchesInvertedPdf) {
  // The empirical distribution of generated samples must track the pdf
  // obtained by inverting Theorem 1's transform.
  const auto m = model();
  auto cfg = gen::from_model(m, 4000.0, 0.2);
  cfg.seed = 555;
  const auto out = gen::generate(cfg);
  std::span<const double> tail(out.series.values);
  tail = tail.subspan(50);

  const auto pdf = core::rate_distribution(m);
  // Compare P(R > level) at a few levels.
  for (double q : {0.3, 0.5, 0.7}) {
    const double level =
        pdf.x.front() + q * (pdf.x.back() - pdf.x.front());
    std::size_t above = 0;
    for (double v : tail) {
      if (v > level) ++above;
    }
    const double empirical =
        static_cast<double>(above) / static_cast<double>(tail.size());
    EXPECT_NEAR(empirical, pdf.exceedance(level), 0.05) << q;
  }
}

TEST(Consistency, WelchSpectrumOfGeneratedTrafficMatchesModel) {
  const auto m = model();
  auto cfg = gen::from_model(m, 4000.0, 0.1);
  cfg.seed = 77;
  const auto out = gen::generate(cfg);
  stats::PeriodogramOptions popt;
  popt.segment = 512;
  const auto spec = stats::welch_periodogram(out.series.values, 0.1, popt);
  // Compare at a few low frequencies (before the sampling filter bites).
  for (std::size_t i : {3u, 8u, 15u}) {
    const double model_density = m.spectral_density(spec[i].omega);
    EXPECT_NEAR(spec[i].density, model_density, 0.5 * model_density)
        << "omega=" << spec[i].omega;
  }
}

}  // namespace
}  // namespace fbm
