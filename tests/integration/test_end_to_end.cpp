// End-to-end reproduction of the paper's validation pipeline (Section VI) at
// test scale: synthetic trace -> flow classification -> parameter estimation
// -> model CoV vs measured CoV, for both flow definitions.
#include <gtest/gtest.h>

#include <cmath>

#include "core/fitting.hpp"
#include "core/model.hpp"
#include "core/moments.hpp"
#include "flow/classifier.hpp"
#include "flow/flow_stats.hpp"
#include "flow/interval.hpp"
#include "measure/rate_meter.hpp"
#include "trace/synthetic.hpp"

namespace fbm {
namespace {

struct Pipeline {
  std::vector<net::PacketRecord> packets;
  std::vector<flow::FlowRecord> flows5;
  std::vector<flow::DiscardedPacket> discards5;
  flow::ClassifierCounters counters5;
  std::vector<flow::FlowRecord> flows24;
  double horizon;
};

Pipeline run_pipeline(double duration_s = 60.0, double util_bps = 8e6,
                      std::uint64_t seed = 1234) {
  Pipeline p;
  trace::SyntheticConfig cfg;
  cfg.duration_s = duration_s;
  cfg.apply_defaults();
  cfg.target_utilization_bps(util_bps);
  cfg.seed = seed;
  p.packets = trace::generate_packets(cfg);
  p.horizon = duration_s;

  flow::ClassifierOptions opt;
  opt.interval = duration_s;  // single analysis interval
  opt.record_discards = true;
  flow::FiveTupleClassifier c5(opt);
  for (const auto& pkt : p.packets) c5.add(pkt);
  c5.flush();
  p.counters5 = c5.counters();
  p.discards5 = c5.discards();
  p.flows5 = c5.take_flows();
  std::sort(p.flows5.begin(), p.flows5.end(),
            [](const auto& a, const auto& b) { return a.start < b.start; });

  p.flows24 = flow::classify_all<flow::PrefixKey<24>>(p.packets, opt);
  return p;
}

const Pipeline& pipeline() {
  static const Pipeline p = run_pipeline();
  return p;
}

TEST(EndToEnd, TraceProducesFlows) {
  const auto& p = pipeline();
  EXPECT_GT(p.packets.size(), 10000u);
  EXPECT_GT(p.flows5.size(), 500u);
  EXPECT_GT(p.flows24.size(), 10u);
}

TEST(EndToEnd, PrefixAggregationReducesFlowCount) {
  // Section VI-A: /24 aggregation cuts the tracked-flow count by roughly an
  // order of magnitude.
  const auto& p = pipeline();
  EXPECT_LT(p.flows24.size(), p.flows5.size() / 2);
}

TEST(EndToEnd, PrefixFlowsLastLonger) {
  const auto& p = pipeline();
  const auto mean_duration = [](const std::vector<flow::FlowRecord>& fs) {
    double acc = 0.0;
    for (const auto& f : fs) acc += f.duration();
    return acc / static_cast<double>(fs.size());
  };
  EXPECT_GT(mean_duration(p.flows24), 2.0 * mean_duration(p.flows5));
}

TEST(EndToEnd, InterarrivalsAreNearPoisson) {
  // Figures 3-4: qq-plot close to the diagonal, ACF within the noise band.
  const auto& p = pipeline();
  const auto d = flow::diagnose_population(p.flows5);
  EXPECT_LT(stats::qq_rms_deviation(d.interarrival_qq), 0.12);
  double worst = 0.0;
  for (std::size_t lag = 1; lag <= 20; ++lag) {
    worst = std::max(worst, std::abs(d.interarrival_acf[lag]));
  }
  EXPECT_LT(worst, 0.1);
}

TEST(EndToEnd, SizesAndDurationsWeaklyCorrelated) {
  // Figures 5-6.
  const auto& p = pipeline();
  const auto d = flow::diagnose_population(p.flows5);
  for (std::size_t lag = 1; lag <= 20; ++lag) {
    EXPECT_LT(std::abs(d.size_acf[lag]), 0.1) << lag;
    EXPECT_LT(std::abs(d.duration_acf[lag]), 0.1) << lag;
  }
}

TEST(EndToEnd, MeanRateModelVsMeasured) {
  // Corollary 1 on real pipeline output. Mean comparisons use all packets
  // (single-packet flows excluded on both sides).
  const auto& p = pipeline();
  const auto intervals =
      flow::group_by_interval(p.flows5, p.horizon, p.horizon);
  ASSERT_EQ(intervals.size(), 1u);
  const auto in = flow::estimate_inputs(intervals[0]);
  const auto series = measure::measure_rate(p.packets, 0.0, p.horizon,
                                   measure::kPaperDelta, p.discards5);
  const auto mm = measure::rate_moments(series);
  EXPECT_NEAR(core::mean_rate(in), mm.mean_bps, 0.15 * mm.mean_bps);
}

TEST(EndToEnd, CovWithin20PercentForSomePowerShot) {
  // The Section VI acceptance band: model CoV within +-20% of measured for a
  // suitable shot power.
  const auto& p = pipeline();
  const auto intervals =
      flow::group_by_interval(p.flows5, p.horizon, p.horizon);
  const auto in = flow::estimate_inputs(intervals[0]);
  const auto series = measure::measure_rate(p.packets, 0.0, p.horizon,
                                   measure::kPaperDelta, p.discards5);
  const auto mm = measure::rate_moments(series);
  ASSERT_GT(mm.cov, 0.0);

  const auto b = core::fit_power_b(mm.variance_bps2, in);
  ASSERT_TRUE(b.has_value());
  const double model_cov = core::power_shot_cov(in, *b);
  EXPECT_NEAR(model_cov, mm.cov, 0.2 * mm.cov);
}

TEST(EndToEnd, RectangularUnderestimatesMeasuredVariance) {
  // Theorem 3 against real measurements: the rectangular model is a lower
  // bound (up to the averaging-interval effect, so allow 20% slack).
  const auto& p = pipeline();
  const auto intervals =
      flow::group_by_interval(p.flows5, p.horizon, p.horizon);
  const auto in = flow::estimate_inputs(intervals[0]);
  const auto series = measure::measure_rate(p.packets, 0.0, p.horizon,
                                   measure::kPaperDelta, p.discards5);
  const auto mm = measure::rate_moments(series);
  EXPECT_LT(core::power_shot_variance(in, 0.0), 1.2 * mm.variance_bps2);
}

TEST(EndToEnd, HigherLambdaSmoothsTraffic) {
  // Section VII-A on pipeline output: quadrupling utilization (i.e. lambda)
  // must reduce the measured CoV.
  const auto lo = run_pipeline(40.0, 4e6, 77);
  const auto hi = run_pipeline(40.0, 16e6, 78);
  const auto cov_of = [](const Pipeline& p) {
    const auto series = measure::measure_rate(p.packets, 0.0, p.horizon,
                                     measure::kPaperDelta, p.discards5);
    return measure::rate_moments(series).cov;
  };
  EXPECT_LT(cov_of(hi), cov_of(lo));
}

TEST(EndToEnd, IntervalSplittingProducesContinuedFlows) {
  // Figure 1: splitting at interval boundaries yields a small number of
  // "continued" flows at interval start.
  trace::SyntheticConfig cfg;
  cfg.duration_s = 60.0;
  cfg.apply_defaults();
  cfg.target_utilization_bps(6e6);
  cfg.seed = 9;
  const auto packets = trace::generate_packets(cfg);

  flow::ClassifierOptions opt;
  opt.interval = 20.0;  // three analysis intervals
  // Keep the paper's timeout:interval ratio (60 s : 30 min); an unscaled
  // 60 s timeout would merge every /24 aggregate across the boundary.
  opt.timeout = 1.0;
  const auto flows = flow::classify_all<flow::PrefixKey<24>>(packets, opt);
  const auto intervals = flow::group_by_interval(flows, 20.0, 60.0);
  ASSERT_EQ(intervals.size(), 3u);
  const std::size_t cont = flow::continued_count(intervals[1]);
  EXPECT_GT(cont, 0u);
  // Continuations are a minority of arrivals. (The paper sees ~2% with
  // 30-minute intervals; our scaled 20 s intervals are comparable to /24
  // aggregate durations, so the fraction is necessarily larger.)
  EXPECT_LT(static_cast<double>(cont),
            0.6 * static_cast<double>(intervals[1].flows.size()));
}

TEST(EndToEnd, ModelFromIntervalAgreesWithEstimateInputs) {
  const auto& p = pipeline();
  const auto intervals =
      flow::group_by_interval(p.flows5, p.horizon, p.horizon);
  const auto in = flow::estimate_inputs(intervals[0]);
  const auto model =
      core::ShotNoiseModel::from_interval(intervals[0], core::triangular_shot());
  EXPECT_NEAR(model.mean_rate(), core::mean_rate(in),
              1e-9 * model.mean_rate());
  EXPECT_NEAR(model.variance(), core::power_shot_variance(in, 1.0),
              1e-6 * model.variance());
}

}  // namespace
}  // namespace fbm
