// Window edge cases the satellite checklist pins: empty windows, flows
// straddling a window boundary, stride > width gaps, and the predictor fed
// a series shorter than its lag order.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "live/live.hpp"
#include "predict/predictor.hpp"
#include "stats/autocorrelation.hpp"

namespace fbm {
namespace {

net::PacketRecord packet(double ts, std::uint16_t src_port,
                         std::uint32_t bytes = 1000) {
  net::PacketRecord p;
  p.timestamp = ts;
  p.tuple.src = net::Ipv4Address(10, 0, 0, 1);
  p.tuple.dst = net::Ipv4Address(192, 168, 0, 1);
  p.tuple.src_port = src_port;
  p.tuple.dst_port = 80;
  p.tuple.protocol = 6;
  p.size_bytes = bytes;
  return p;
}

live::LiveConfig tiling_config(double width, double stride = 0.0) {
  live::LiveConfig config;
  config.window_s = width;
  config.stride_s = stride;
  config.analysis.timeout_s(1.0);
  return config;
}

std::vector<live::WindowReport> run(const live::LiveConfig& config,
                                    const std::vector<net::PacketRecord>&
                                        packets) {
  live::WindowedEstimator estimator(config);
  for (const auto& p : packets) estimator.push(p);
  estimator.finish();
  return estimator.take_reports();
}

TEST(LiveEdgeCases, EmptyWindowsStillReport) {
  // Traffic in windows 0 and 5 only; 1-4 must still produce (zero) reports
  // so the emitted index sequence stays contiguous.
  std::vector<net::PacketRecord> packets;
  packets.push_back(packet(0.1, 1));
  packets.push_back(packet(0.2, 1));
  packets.push_back(packet(25.1, 2));
  packets.push_back(packet(25.2, 2));

  const auto reports = run(tiling_config(5.0), packets);
  ASSERT_EQ(reports.size(), 6u);
  for (std::size_t i = 0; i < reports.size(); ++i) {
    EXPECT_EQ(reports[i].window_index, i);
  }
  for (std::size_t i : {1u, 2u, 3u, 4u}) {
    SCOPED_TRACE(i);
    EXPECT_EQ(reports[i].packets, 0u);
    EXPECT_EQ(reports[i].inputs.flows, 0u);
    EXPECT_EQ(reports[i].measured.mean_bps, 0.0);
    // The zero series still covers the full window at Delta resolution.
    EXPECT_EQ(reports[i].measured.samples,
              static_cast<std::size_t>(
                  std::ceil(5.0 / measure::kPaperDelta)));
  }
  EXPECT_EQ(reports[0].inputs.flows, 1u);
  EXPECT_EQ(reports[5].inputs.flows, 1u);
}

TEST(LiveEdgeCases, FlowStraddlingWindowBoundary) {
  // A two-packet flow at 4.9 / 5.1 crosses the tiling boundary at t=5: each
  // window sees one packet, a single-packet piece, which the paper
  // discards — and whose bytes leave the rate bins.
  std::vector<net::PacketRecord> packets{packet(4.9, 7), packet(5.1, 7)};

  const auto tiled = run(tiling_config(5.0), packets);
  ASSERT_EQ(tiled.size(), 2u);
  for (const auto& r : tiled) {
    SCOPED_TRACE(r.window_index);
    EXPECT_EQ(r.inputs.flows, 0u);
    EXPECT_EQ(r.discards, 1u);
    EXPECT_EQ(r.packets, 1u);  // seen, then excluded from the variance
    EXPECT_EQ(r.measured.mean_bps, 0.0);
  }

  // An overlapping window that contains both packets sees the whole flow.
  const auto overlapped = run(tiling_config(5.0, 2.0), packets);
  bool saw_whole_flow = false;
  for (const auto& r : overlapped) {
    if (r.inputs.flows == 1u) {
      saw_whole_flow = true;
      EXPECT_EQ(r.packets, 2u);
      EXPECT_EQ(r.discards, 0u);
    }
  }
  EXPECT_TRUE(saw_whole_flow);
}

TEST(LiveEdgeCases, StrideLargerThanWidthLeavesGaps) {
  // Windows [0,2), [5,7), [10,12): the packet at t=3 falls in the gap and
  // belongs to no window, but it still advances the stream clock.
  std::vector<net::PacketRecord> packets;
  packets.push_back(packet(0.5, 1));
  packets.push_back(packet(0.9, 1));
  packets.push_back(packet(3.0, 2));
  packets.push_back(packet(3.1, 2));
  packets.push_back(packet(10.5, 3));
  packets.push_back(packet(10.9, 3));

  const auto reports = run(tiling_config(2.0, 5.0), packets);
  ASSERT_EQ(reports.size(), 3u);
  EXPECT_EQ(reports[0].inputs.flows, 1u);
  EXPECT_EQ(reports[0].packets, 2u);
  EXPECT_EQ(reports[1].packets, 0u);  // t=3 traffic is in no window
  EXPECT_EQ(reports[1].inputs.flows, 0u);
  EXPECT_EQ(reports[2].inputs.flows, 1u);
  std::uint64_t window_packets = 0;
  for (const auto& r : reports) window_packets += r.packets;
  EXPECT_EQ(window_packets, 4u);  // 2 of the 6 pushed packets fell in gaps
}

TEST(LiveEdgeCases, ForecasterNeedsHistory) {
  live::RollingForecaster forecaster(8, 64, 3.0);
  EXPECT_FALSE(forecaster.forecast().has_value());
  forecaster.observe(1e6);
  forecaster.observe(2e6);
  forecaster.observe(1.5e6);
  EXPECT_FALSE(forecaster.forecast().has_value());  // 3 < 4 samples
  forecaster.observe(1.8e6);
  const auto f = forecaster.forecast();
  ASSERT_TRUE(f.has_value());
  // 4 samples cap the order at history/2 = 2, well under max_order.
  EXPECT_GE(f->order, 1u);
  EXPECT_LE(f->order, 2u);
  EXPECT_LE(f->band_low_bps, f->predicted_mean_bps);
  EXPECT_GE(f->band_high_bps, f->predicted_mean_bps);
}

TEST(LiveEdgeCases, PredictorThrowsOnShortHistory) {
  // The raw predictor contract the forecaster must never trip over: history
  // shorter than the lag order throws.
  const std::vector<double> series{1.0, 2.0, 1.5, 1.8, 2.1, 1.9};
  const auto acf = stats::autocorrelation_series(series, 4);
  const predict::MovingAveragePredictor predictor(acf, 4, 1.7);
  const std::vector<double> short_history{1.0, 2.0};
  EXPECT_THROW((void)predictor.predict(short_history),
               std::invalid_argument);
}

TEST(LiveEdgeCases, ConstantHistoryForecastsItsMean) {
  live::RollingForecaster forecaster(4, 16, 3.0);
  for (int i = 0; i < 8; ++i) forecaster.observe(5e6);
  const auto f = forecaster.forecast();
  ASSERT_TRUE(f.has_value());
  EXPECT_DOUBLE_EQ(f->predicted_mean_bps, 5e6);
  EXPECT_DOUBLE_EQ(f->sigma_bps, 0.0);
}

TEST(LiveEdgeCases, WarmupWindowsCarryNoForecast) {
  // First windows have no forecast and therefore can never alert.
  const auto reports =
      run(tiling_config(5.0), {packet(0.1, 1), packet(0.2, 1)});
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_FALSE(reports[0].forecast.available);
  EXPECT_FALSE(reports[0].anomaly.alert);
}

TEST(LiveEdgeCases, RejectsBadStreams) {
  live::WindowedEstimator estimator(tiling_config(5.0));
  net::PacketRecord negative = packet(1.0, 1);
  negative.timestamp = -0.5;
  EXPECT_THROW(estimator.push(negative), std::invalid_argument);

  estimator.push(packet(2.0, 1));
  EXPECT_THROW(estimator.push(packet(1.0, 1)), std::invalid_argument);

  estimator.finish();
  EXPECT_THROW(estimator.push(packet(3.0, 1)), std::logic_error);
}

TEST(LiveEdgeCases, RejectsBadConfig) {
  live::LiveConfig config;
  config.window_s = 0.0;
  EXPECT_THROW(live::WindowedEstimator{config}, std::invalid_argument);
  config.window_s = 5.0;
  config.forecast_history = 2;
  EXPECT_THROW(live::WindowedEstimator{config}, std::invalid_argument);
}

TEST(LiveEdgeCases, SinkStreamsInsteadOfQueueing) {
  live::WindowedEstimator estimator(tiling_config(1.0));
  std::vector<std::size_t> seen;
  estimator.set_window_sink(
      [&](live::WindowReport&& r) { seen.push_back(r.window_index); });
  for (double t = 0.05; t < 4.0; t += 0.1) {
    estimator.push(packet(t, 9));
  }
  estimator.finish();
  EXPECT_FALSE(estimator.has_report());
  ASSERT_EQ(seen.size(), 4u);
  for (std::size_t i = 0; i < seen.size(); ++i) EXPECT_EQ(seen[i], i);
}

TEST(LiveEdgeCases, SpikeRaisesAlert) {
  // Steady 2-packet flows per window, then a 20x burst: the rolling band
  // must flag the burst window as a spike.
  live::LiveConfig config = tiling_config(1.0);
  config.band_k_sigma = 3.0;
  std::vector<net::PacketRecord> packets;
  for (int w = 0; w < 12; ++w) {
    const double t0 = w + 0.1;
    const auto port = static_cast<std::uint16_t>(100 + w);
    const std::uint32_t bytes = w == 11 ? 20000 : 1000;
    packets.push_back(packet(t0, port, bytes));
    packets.push_back(packet(t0 + 0.5, port, bytes));
  }
  const auto reports = run(config, packets);
  ASSERT_EQ(reports.size(), 12u);
  EXPECT_TRUE(reports[11].anomaly.alert);
  EXPECT_EQ(reports[11].anomaly.kind, live::AlertKind::spike);
  for (std::size_t i = 6; i < 11; ++i) {
    EXPECT_FALSE(reports[i].anomaly.alert) << i;
  }
}

}  // namespace
}  // namespace fbm
