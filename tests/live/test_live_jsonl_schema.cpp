// Schema stability of the fbm_live JSONL output, pinned with the shared
// tests/support/json_fields.hpp reader: key order is part of the contract
// (external dashboards and the live-smoke CI job parse these lines).
//
// The LiveJsonl* tests double as the CI validator: the live-smoke job runs
// fbm_live --json on a synthetic trace and re-runs this test with
// FBM_LIVE_JSONL pointing at the captured output, which validates every
// emitted line against the same schema.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "live/live.hpp"
#include "../support/json_fields.hpp"
#include "trace/synthetic.hpp"

namespace fbm {
namespace {

const std::vector<std::string>& expected_keys() {
  static const std::vector<std::string> keys{
      "window", "start_s", "width_s", "stride_s", "packets", "bytes",
      "discards",
      "flows", "count", "lambda_per_s", "mean_size_bits",
      "mean_s2_over_d_bits2_per_s", "mean_duration_s", "stddev_size_bits",
      "stddev_duration_s", "mean_rate_bps",
      "measured", "samples", "mean_bps", "variance_bps2", "cov",
      "model", "shot_b_fitted", "shot_b_used", "mean_bps", "stddev_bps",
      "cov",
      "provisioning", "eps", "capacity_bps", "headroom",
      "forecast", "predicted_mean_bps", "band_low_bps", "band_high_bps",
      "sigma_bps", "order",
      "anomaly", "alert", "kind", "deviation_sigma", "consecutive",
      "bin_events", "bin_peak_sigma"};
  return keys;
}

void expect_schema(const std::string& line) {
  const auto fields = testsupport::parse_fields(line);
  const auto& keys = expected_keys();
  ASSERT_EQ(fields.size(), keys.size()) << line;
  for (std::size_t i = 0; i < fields.size(); ++i) {
    EXPECT_EQ(fields[i].key, keys[i]) << "field " << i;
    EXPECT_FALSE(fields[i].value.empty()) << fields[i].key;
  }
}

TEST(LiveJsonl, DefaultReportMatchesSchema) {
  // A default-constructed report (cold start: no forecast, no anomaly)
  // renders every key with null placeholders where no value exists yet.
  live::WindowReport report;
  const std::string line = live::to_jsonl(report);
  EXPECT_EQ(line.find('\n'), std::string::npos);
  expect_schema(line);

  const auto fields = testsupport::parse_fields(line);
  for (const auto& f : fields) {
    if (f.key == "predicted_mean_bps" || f.key == "band_low_bps" ||
        f.key == "band_high_bps" || f.key == "sigma_bps" ||
        f.key == "kind") {
      EXPECT_EQ(f.value, "null") << f.key;
    }
    if (f.key == "alert") {
      EXPECT_EQ(f.value, "false");
    }
  }
}

TEST(LiveJsonl, PopulatedReportMatchesSchema) {
  live::WindowReport report;
  report.window_index = 3;
  report.start_s = 30.0;
  report.width_s = 10.0;
  report.stride_s = 10.0;
  report.packets = 1234;
  report.shot_b = 1.25;
  report.forecast.available = true;
  report.forecast.predicted_mean_bps = 5e6;
  report.forecast.band_low_bps = 4e6;
  report.forecast.band_high_bps = 6e6;
  report.forecast.sigma_bps = 1e6 / 3.0;
  report.forecast.order = 2;
  report.anomaly.alert = true;
  report.anomaly.kind = live::AlertKind::spike;
  const std::string line = live::to_jsonl(report);
  expect_schema(line);

  const auto fields = testsupport::parse_fields(line);
  for (const auto& f : fields) {
    if (f.key == "shot_b_fitted") {
      EXPECT_EQ(f.value, "1.25");
    }
    if (f.key == "kind") {
      EXPECT_EQ(f.value, "\"spike\"");
    }
    if (f.key == "alert") {
      EXPECT_EQ(f.value, "true");
    }
    if (f.key == "predicted_mean_bps") {
      EXPECT_EQ(f.value, "5e+06");  // shortest round-trip form
    }
  }
}

TEST(LiveJsonl, EstimatorOutputMatchesSchema) {
  trace::SyntheticConfig cfg;
  cfg.duration_s = 20.0;
  cfg.apply_defaults();
  cfg.target_utilization_bps(4e6);
  cfg.seed = 99;
  const auto packets = trace::generate_packets(cfg);

  live::LiveConfig config;
  config.window_s = 5.0;
  config.analysis.timeout_s(2.0);
  live::WindowedEstimator estimator(config);
  for (const auto& p : packets) estimator.push(p);
  estimator.finish();
  const auto reports = estimator.take_reports();
  ASSERT_GE(reports.size(), 3u);
  for (const auto& r : reports) {
    SCOPED_TRACE(r.window_index);
    expect_schema(live::to_jsonl(r));
  }
}

/// CI hook: validate a captured fbm_live --json run, line by line, with the
/// same reader (live-smoke sets FBM_LIVE_JSONL).
TEST(LiveJsonl, ValidatesCapturedFile) {
  const char* path = std::getenv("FBM_LIVE_JSONL");
  if (path == nullptr) GTEST_SKIP() << "FBM_LIVE_JSONL not set";
  std::ifstream in(path);
  ASSERT_TRUE(in) << path;
  std::string line;
  std::size_t lines = 0;
  std::size_t last_window = 0;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    SCOPED_TRACE(lines);
    expect_schema(line);
    const auto fields = testsupport::parse_fields(line);
    const std::size_t window =
        static_cast<std::size_t>(std::stoul(fields[0].value));
    if (lines > 0) {
      EXPECT_EQ(window, last_window + 1);  // contiguous
    }
    last_window = window;
    ++lines;
  }
  EXPECT_GT(lines, 0u);
}

}  // namespace
}  // namespace fbm
