// The differential proof behind fbm::live (ISSUE 4 acceptance): replaying a
// finished trace through live::WindowedEstimator reproduces — bit for bit —
// the parameters an offline batch fit computes on each window's packets in
// isolation. Two independent references:
//
//  1. For any window/stride: the PR-1 batch primitives (FlowClassifier fed
//     the window's packets, estimate_inputs, measure_rate, fit_power_b,
//     plan_link) run per window on a filtered copy of the trace.
//  2. For tiling windows (stride == width): the full api::analyze()
//     pipeline, serial and sharded, whose intervals are exactly the live
//     windows.
//
// Both run across both flow definitions and multiple window/stride shapes
// (tiling, overlapping, gapped).
#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <vector>

#include "api/api.hpp"
#include "core/fitting.hpp"
#include "core/moments.hpp"
#include "dimension/provisioning.hpp"
#include "flow/classifier.hpp"
#include "flow/interval.hpp"
#include "live/live.hpp"
#include "measure/rate_meter.hpp"
#include "trace/synthetic.hpp"

namespace fbm {
namespace {

std::vector<net::PacketRecord> seeded_trace(double duration_s = 60.0,
                                            double util_bps = 8e6,
                                            std::uint64_t seed = 777) {
  trace::SyntheticConfig cfg;
  cfg.duration_s = duration_s;
  cfg.apply_defaults();
  cfg.target_utilization_bps(util_bps);
  cfg.seed = seed;
  return trace::generate_packets(cfg);
}

/// Everything the acceptance criterion calls "the window parameters".
struct WindowRef {
  flow::ModelInputs inputs;
  measure::RateMoments measured;
  std::optional<double> shot_b;
  double shot_b_used = 1.0;
  double model_cov = 0.0;
  dimension::ProvisioningPlan plan;
};

/// Offline batch fit of one window in isolation, via the PR-1 primitives —
/// not one line shared with the live window bookkeeping.
template <typename Key>
WindowRef batch_fit_window(const std::vector<net::PacketRecord>& packets,
                           double start, double width,
                           const api::AnalysisConfig& cfg) {
  std::vector<net::PacketRecord> inside;
  for (const auto& p : packets) {
    if (p.timestamp >= start && p.timestamp < start + width) {
      inside.push_back(p);
    }
  }

  flow::ClassifierOptions opt;
  opt.timeout = cfg.timeout_s();  // no interval splitting: window = interval
  opt.record_discards = true;
  flow::FlowClassifier<Key> classifier(opt);
  for (const auto& p : inside) classifier.add(p);
  classifier.flush();
  const auto discards = classifier.take_discards();
  auto flows = classifier.take_flows();
  std::sort(flows.begin(), flows.end(), flow::ByStart{});

  WindowRef ref;
  flow::IntervalData iv;
  iv.start = start;
  iv.length = width;
  iv.flows = std::move(flows);
  ref.inputs = flow::estimate_inputs(iv);
  const auto series = measure::measure_rate(inside, start, start + width,
                                            cfg.delta_s(), discards);
  ref.measured = measure::rate_moments(series);
  ref.shot_b = core::fit_power_b(ref.measured.variance_bps2, ref.inputs);
  ref.shot_b_used = ref.shot_b.value_or(cfg.fallback_shot_b());
  ref.model_cov = core::power_shot_cov(ref.inputs, ref.shot_b_used);
  ref.plan = dimension::plan_link(ref.inputs, ref.shot_b_used, cfg.epsilon());
  return ref;
}

void expect_bitwise(const WindowRef& ref, const live::WindowReport& live) {
  EXPECT_EQ(ref.inputs.flows, live.inputs.flows);
  EXPECT_EQ(ref.inputs.lambda, live.inputs.lambda);
  EXPECT_EQ(ref.inputs.mean_size_bits, live.inputs.mean_size_bits);
  EXPECT_EQ(ref.inputs.mean_s2_over_d, live.inputs.mean_s2_over_d);
  EXPECT_EQ(ref.measured.samples, live.measured.samples);
  EXPECT_EQ(ref.measured.mean_bps, live.measured.mean_bps);
  EXPECT_EQ(ref.measured.variance_bps2, live.measured.variance_bps2);
  EXPECT_EQ(ref.measured.cov, live.measured.cov);
  EXPECT_EQ(ref.shot_b.has_value(), live.shot_b.has_value());
  if (ref.shot_b && live.shot_b) {
    EXPECT_EQ(*ref.shot_b, *live.shot_b);
  }
  EXPECT_EQ(ref.shot_b_used, live.shot_b_used);
  EXPECT_EQ(ref.model_cov, live.model_cov);
  EXPECT_EQ(ref.plan.mean_bps, live.plan.mean_bps);
  EXPECT_EQ(ref.plan.stddev_bps, live.plan.stddev_bps);
  EXPECT_EQ(ref.plan.capacity_bps, live.plan.capacity_bps);
  EXPECT_EQ(ref.plan.headroom, live.plan.headroom);
}

template <typename Key>
void run_differential(api::FlowDefinition def, double width, double stride) {
  const auto packets = seeded_trace();

  live::LiveConfig config;
  config.window_s = width;
  config.stride_s = stride;
  config.analysis.flow_definition(def).timeout_s(10.0);
  live::WindowedEstimator estimator(config);
  for (const auto& p : packets) estimator.push(p);
  estimator.finish();
  const auto reports = estimator.take_reports();
  ASSERT_GT(reports.size(), 3u);

  for (const auto& r : reports) {
    SCOPED_TRACE(r.window_index);
    // The live window start is k*stride; recompute it the same way.
    EXPECT_EQ(r.start_s,
              static_cast<double>(r.window_index) * config.stride());
    const WindowRef ref = batch_fit_window<Key>(packets, r.start_s, width,
                                                config.analysis);
    expect_bitwise(ref, r);
  }

  // Contiguous window indices, one report each.
  for (std::size_t i = 0; i < reports.size(); ++i) {
    EXPECT_EQ(reports[i].window_index, i);
  }
}

TEST(WindowedDifferential, TilingFiveTuple) {
  run_differential<flow::FiveTupleKey>(api::FlowDefinition::five_tuple, 10.0,
                                       10.0);
}

TEST(WindowedDifferential, TilingPrefix24) {
  run_differential<flow::PrefixKey<24>>(api::FlowDefinition::prefix24, 10.0,
                                        10.0);
}

TEST(WindowedDifferential, OverlappingFiveTuple) {
  run_differential<flow::FiveTupleKey>(api::FlowDefinition::five_tuple, 10.0,
                                       4.0);
}

TEST(WindowedDifferential, OverlappingPrefix24) {
  run_differential<flow::PrefixKey<24>>(api::FlowDefinition::prefix24, 10.0,
                                        4.0);
}

TEST(WindowedDifferential, GappedFiveTuple) {
  run_differential<flow::FiveTupleKey>(api::FlowDefinition::five_tuple, 6.0,
                                       9.0);
}

TEST(WindowedDifferential, GappedPrefix24) {
  run_differential<flow::PrefixKey<24>>(api::FlowDefinition::prefix24, 6.0,
                                        9.0);
}

/// With tiling windows the live reports must line up with the streaming
/// analysis pipeline's intervals — a completely independent implementation
/// (boundary-splitting classifier, watermark-driven interval closing).
///
/// The two differ, by design, on exactly one class of record: a one-packet
/// piece of a flow split at an interval boundary. The pipeline keeps it
/// (the paper discards single-packet FLOWS, not pieces); an isolated
/// window cannot know its flow continued across the edge and drops it as a
/// single. So the pinned relationship is: the live flow population equals
/// the pipeline interval's multi-packet pieces, bit for bit — proven by
/// recomputing the model inputs over that filtered set with the PR-1
/// primitives and demanding bitwise equality with the live inputs. The
/// measured moments and downstream fit of the live window are pinned
/// bitwise against the isolation reference by the Tiling* tests above.
void run_vs_pipeline(api::FlowDefinition def, std::size_t threads) {
  const auto packets = seeded_trace();
  const double width = 10.0;

  live::LiveConfig config;
  config.window_s = width;
  config.analysis.flow_definition(def).timeout_s(10.0);
  live::WindowedEstimator estimator(config);
  for (const auto& p : packets) estimator.push(p);
  estimator.finish();
  const auto live_reports = estimator.take_reports();

  api::AnalysisConfig batch = config.analysis;
  batch.interval_s(width).threads(threads).keep_flows(true);
  auto source = api::make_vector_source(packets);
  const auto pipeline_reports = api::analyze(*source, batch);

  std::size_t single_pieces_total = 0;
  ASSERT_EQ(live_reports.size(), pipeline_reports.size());
  for (std::size_t i = 0; i < live_reports.size(); ++i) {
    SCOPED_TRACE(i);
    const auto& l = live_reports[i];
    const auto& p = pipeline_reports[i];
    EXPECT_EQ(p.interval_index, l.window_index);
    EXPECT_EQ(p.start_s, l.start_s);

    // The pipeline's surviving one-packet records are all boundary pieces
    // of multi-packet flows; dropping them must reproduce the isolated
    // window's flow population exactly.
    flow::IntervalData filtered;
    filtered.start = p.interval.start;
    filtered.length = p.interval.length;
    for (const auto& f : p.interval.flows) {
      if (f.packets >= 2) {
        filtered.flows.push_back(f);
      } else {
        ++single_pieces_total;
      }
    }
    const auto inputs = flow::estimate_inputs(filtered);
    EXPECT_EQ(inputs.flows, l.inputs.flows);
    EXPECT_EQ(inputs.lambda, l.inputs.lambda);
    EXPECT_EQ(inputs.mean_size_bits, l.inputs.mean_size_bits);
    EXPECT_EQ(inputs.mean_s2_over_d, l.inputs.mean_s2_over_d);
  }
  // The trace has flows straddling window edges, so the relationship above
  // is exercised, not vacuous.
  EXPECT_GT(single_pieces_total, 0u);
}

TEST(WindowedDifferential, MatchesSerialPipelineFiveTuple) {
  run_vs_pipeline(api::FlowDefinition::five_tuple, 1);
}

TEST(WindowedDifferential, MatchesSerialPipelinePrefix24) {
  run_vs_pipeline(api::FlowDefinition::prefix24, 1);
}

TEST(WindowedDifferential, MatchesShardedPipeline) {
  run_vs_pipeline(api::FlowDefinition::five_tuple, 4);
}

/// Replay determinism end to end, forecast and anomaly fields included: the
/// rendered JSONL of two runs over the same stream is byte-identical.
TEST(WindowedDifferential, ReplayIsByteIdentical) {
  const auto packets = seeded_trace(45.0);
  live::LiveConfig config;
  config.window_s = 5.0;
  config.stride_s = 2.0;
  config.analysis.timeout_s(5.0);

  const auto render = [&] {
    live::WindowedEstimator estimator(config);
    std::string out;
    estimator.set_window_sink([&](live::WindowReport&& r) {
      out += live::to_jsonl(r);
      out += '\n';
    });
    for (const auto& p : packets) estimator.push(p);
    estimator.finish();
    return out;
  };

  const std::string first = render();
  const std::string second = render();
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, second);
}

}  // namespace
}  // namespace fbm
