#include "measure/fluid_queue.hpp"

#include <gtest/gtest.h>

namespace fbm::measure {
namespace {

stats::RateSeries series_of(std::vector<double> rates, double delta = 1.0) {
  stats::RateSeries s;
  s.delta = delta;
  s.values = std::move(rates);
  return s;
}

TEST(FluidQueue, Validation) {
  const auto s = series_of({1.0});
  EXPECT_THROW((void)run_fluid_queue(s, {0.0, 10.0}), std::invalid_argument);
  EXPECT_THROW((void)run_fluid_queue(s, {1.0, -1.0}), std::invalid_argument);
  stats::RateSeries empty;
  EXPECT_THROW((void)run_fluid_queue(empty, {1.0, 1.0}),
               std::invalid_argument);
}

TEST(FluidQueue, UnderloadedLinkIsLossless) {
  const auto s = series_of({50.0, 80.0, 30.0, 90.0});
  const auto rep = run_fluid_queue(s, {100.0, 1000.0});
  EXPECT_DOUBLE_EQ(rep.lost_bits, 0.0);
  EXPECT_DOUBLE_EQ(rep.loss_fraction, 0.0);
  EXPECT_DOUBLE_EQ(rep.max_queue_bits, 0.0);
  EXPECT_DOUBLE_EQ(rep.congested_fraction, 0.0);
  EXPECT_DOUBLE_EQ(rep.carried_bits, rep.offered_bits);
}

TEST(FluidQueue, BufferAbsorbsShortBurst) {
  // One bin at 150 over capacity 100 puts 50 bits in the queue; the next
  // bins drain it.
  const auto s = series_of({150.0, 50.0, 50.0});
  const auto rep = run_fluid_queue(s, {100.0, 1000.0});
  EXPECT_DOUBLE_EQ(rep.lost_bits, 0.0);
  EXPECT_DOUBLE_EQ(rep.max_queue_bits, 50.0);
  EXPECT_NEAR(rep.congested_fraction, 1.0 / 3.0, 1e-12);
  EXPECT_GT(rep.busy_fraction, 0.0);
}

TEST(FluidQueue, BufferlessLinkDropsAllOvershoot) {
  const auto s = series_of({150.0, 100.0, 50.0});
  const auto rep = run_fluid_queue(s, {100.0, 0.0});
  EXPECT_DOUBLE_EQ(rep.lost_bits, 50.0);  // the whole overshoot of bin 0
  EXPECT_NEAR(rep.loss_fraction, 50.0 / 300.0, 1e-12);
}

TEST(FluidQueue, SustainedOverloadFillsBufferThenLoses) {
  const auto s = series_of({200.0, 200.0, 200.0});
  const auto rep = run_fluid_queue(s, {100.0, 150.0});
  // Fill: 100 bits/bin net. Bin 0 ends at 100; bin 1 hits 150 at t=0.5 and
  // loses 50; bin 2 loses 100.
  EXPECT_DOUBLE_EQ(rep.max_queue_bits, 150.0);
  EXPECT_DOUBLE_EQ(rep.lost_bits, 150.0);
  EXPECT_DOUBLE_EQ(rep.congested_fraction, 1.0);
}

TEST(FluidQueue, DelayIsQueueOverCapacity) {
  const auto s = series_of({200.0, 0.0});
  const auto rep = run_fluid_queue(s, {100.0, 1000.0});
  EXPECT_DOUBLE_EQ(rep.max_queue_bits, 100.0);
  EXPECT_DOUBLE_EQ(rep.max_delay_s, 1.0);
  EXPECT_GT(rep.mean_delay_s, 0.0);
  EXPECT_LT(rep.mean_delay_s, rep.max_delay_s);
}

TEST(FluidQueue, QueueEmptiesMidBin) {
  // Bin 0 leaves 50 bits; bin 1 at rate 0 drains at 100/s -> empty at 0.5.
  const auto s = series_of({150.0, 0.0, 0.0});
  const auto rep = run_fluid_queue(s, {100.0, 1000.0});
  EXPECT_DOUBLE_EQ(rep.lost_bits, 0.0);
  // Mean queue: bin0 ramps 0->50 (avg 25), bin1 drains 50->0 over 0.5s
  // (integral 12.5), bin2 zero. Mean = (25 + 12.5 + 0)/3.
  EXPECT_NEAR(rep.mean_queue_bits, 37.5 / 3.0, 1e-9);
}

TEST(FluidQueue, ConservationOfBits) {
  const auto s = series_of({120.0, 90.0, 200.0, 10.0, 170.0}, 0.5);
  const auto rep = run_fluid_queue(s, {100.0, 20.0});
  EXPECT_NEAR(rep.offered_bits, rep.carried_bits + rep.lost_bits, 1e-9);
  EXPECT_GT(rep.lost_bits, 0.0);
}

TEST(FluidQueue, LargerBufferNeverLosesMore) {
  const auto s = series_of({300.0, 120.0, 80.0, 250.0, 40.0});
  double prev_loss = 1e18;
  for (double buffer : {0.0, 50.0, 200.0, 1000.0}) {
    const auto rep = run_fluid_queue(s, {100.0, buffer});
    EXPECT_LE(rep.lost_bits, prev_loss + 1e-9) << buffer;
    prev_loss = rep.lost_bits;
  }
}

TEST(FluidQueue, HigherCapacityNeverLosesMore) {
  const auto s = series_of({300.0, 120.0, 80.0, 250.0, 40.0});
  double prev_loss = 1e18;
  for (double c : {50.0, 100.0, 200.0, 400.0}) {
    const auto rep = run_fluid_queue(s, {c, 10.0});
    EXPECT_LE(rep.lost_bits, prev_loss + 1e-9) << c;
    prev_loss = rep.lost_bits;
  }
}

}  // namespace
}  // namespace fbm::measure
