#include "measure/rate_meter.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace fbm::measure {
namespace {

net::PacketRecord packet(double ts, std::uint32_t bytes) {
  net::PacketRecord p;
  p.timestamp = ts;
  p.size_bytes = bytes;
  return p;
}

TEST(MeasureRate, ConstantStreamIsFlat) {
  std::vector<net::PacketRecord> packets;
  for (int i = 0; i < 1000; ++i) {
    // Mid-bin offset keeps timestamps away from bin boundaries, where the
    // FP representation of i*0.01 would make the binning order-dependent.
    packets.push_back(packet(i * 0.01 + 0.003, 125));  // 100 kbps
  }
  const auto series = measure_rate(packets, 0.0, 10.0, 0.2);
  ASSERT_EQ(series.values.size(), 50u);
  for (double v : series.values) EXPECT_NEAR(v, 100e3, 1e-6);
  const RateMoments m = rate_moments(series);
  EXPECT_NEAR(m.mean_bps, 100e3, 1e-6);
  EXPECT_NEAR(m.cov, 0.0, 1e-9);
}

TEST(MeasureRate, ExclusionSubtractsSinglePacketFlows) {
  std::vector<net::PacketRecord> packets = {packet(0.1, 1000),
                                            packet(0.15, 500)};
  std::vector<flow::DiscardedPacket> exclude = {{0.15, 500}};
  const auto series = measure_rate(packets, 0.0, 0.2, 0.2, exclude);
  ASSERT_EQ(series.values.size(), 1u);
  EXPECT_DOUBLE_EQ(series.values[0], 1000.0 * 8.0 / 0.2);
}

TEST(MeasureRate, WindowClipsPackets) {
  std::vector<net::PacketRecord> packets = {packet(-0.5, 100),
                                            packet(0.5, 100),
                                            packet(99.0, 100)};
  const auto series = measure_rate(packets, 0.0, 1.0, 0.5);
  double total = 0.0;
  for (double v : series.values) total += v * 0.5 / 8.0;
  EXPECT_DOUBLE_EQ(total, 100.0);  // only the in-window packet
}

TEST(MeasureRate, BurstRaisesCov) {
  std::vector<net::PacketRecord> packets;
  for (int i = 0; i < 100; ++i) packets.push_back(packet(i * 0.1, 100));
  // Add a large burst in one bin.
  for (int i = 0; i < 50; ++i) {
    packets.push_back(packet(5.0 + i * 1e-4, 1500));
  }
  std::sort(packets.begin(), packets.end(), net::ByTimestamp{});
  const auto series = measure_rate(packets, 0.0, 10.0, 0.2);
  const RateMoments m = rate_moments(series);
  EXPECT_GT(m.cov, 1.0);
}

TEST(RateMoments, EmptySeries) {
  stats::RateSeries s;
  const RateMoments m = rate_moments(s);
  EXPECT_EQ(m.samples, 0u);
  EXPECT_DOUBLE_EQ(m.mean_bps, 0.0);
}

TEST(PaperDelta, Is200Milliseconds) {
  EXPECT_DOUBLE_EQ(kPaperDelta, 0.2);
}

}  // namespace
}  // namespace fbm::measure
