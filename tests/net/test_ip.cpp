#include "net/ip.hpp"

#include <gtest/gtest.h>

#include <unordered_set>

#include "net/five_tuple.hpp"
#include "net/packet.hpp"

namespace fbm::net {
namespace {

TEST(Ipv4Address, OctetConstruction) {
  const Ipv4Address a(192, 168, 1, 42);
  EXPECT_EQ(a.value(), 0xc0a8012au);
  EXPECT_EQ(a.octet(0), 192);
  EXPECT_EQ(a.octet(3), 42);
}

TEST(Ipv4Address, ToString) {
  EXPECT_EQ(Ipv4Address(10, 0, 0, 1).to_string(), "10.0.0.1");
  EXPECT_EQ(Ipv4Address(255, 255, 255, 255).to_string(), "255.255.255.255");
  EXPECT_EQ(Ipv4Address{}.to_string(), "0.0.0.0");
}

TEST(Ipv4Address, ParseRoundTrip) {
  for (const char* s : {"0.0.0.0", "10.1.2.3", "255.255.255.255",
                        "172.16.254.1"}) {
    const auto a = Ipv4Address::parse(s);
    ASSERT_TRUE(a.has_value()) << s;
    EXPECT_EQ(a->to_string(), s);
  }
}

TEST(Ipv4Address, ParseRejectsMalformed) {
  for (const char* s : {"", "1.2.3", "1.2.3.4.5", "256.0.0.1", "a.b.c.d",
                        "1..2.3", "1.2.3.4x", "-1.2.3.4"}) {
    EXPECT_FALSE(Ipv4Address::parse(s).has_value()) << s;
  }
}

TEST(Ipv4Address, Ordering) {
  EXPECT_LT(Ipv4Address(10, 0, 0, 1), Ipv4Address(10, 0, 0, 2));
  EXPECT_EQ(Ipv4Address(1, 2, 3, 4), Ipv4Address(1, 2, 3, 4));
}

TEST(Prefix, CanonicalisesHostBits) {
  const Prefix p(Ipv4Address(192, 168, 1, 200), 24);
  EXPECT_EQ(p.network().to_string(), "192.168.1.0");
  EXPECT_EQ(p.to_string(), "192.168.1.0/24");
}

TEST(Prefix, EqualityAfterCanonicalisation) {
  const Prefix a(Ipv4Address(10, 1, 2, 3), 24);
  const Prefix b(Ipv4Address(10, 1, 2, 250), 24);
  EXPECT_EQ(a, b);
}

TEST(Prefix, DifferentLengthsDiffer) {
  const Prefix a(Ipv4Address(10, 1, 2, 3), 24);
  const Prefix b(Ipv4Address(10, 1, 2, 3), 16);
  EXPECT_NE(a, b);
}

TEST(Prefix, Contains) {
  const Prefix p(Ipv4Address(10, 1, 2, 0), 24);
  EXPECT_TRUE(p.contains(Ipv4Address(10, 1, 2, 255)));
  EXPECT_FALSE(p.contains(Ipv4Address(10, 1, 3, 0)));
}

TEST(Prefix, EdgeLengths) {
  const Prefix all(Ipv4Address(1, 2, 3, 4), 0);
  EXPECT_TRUE(all.contains(Ipv4Address(255, 255, 255, 255)));
  const Prefix host(Ipv4Address(1, 2, 3, 4), 32);
  EXPECT_TRUE(host.contains(Ipv4Address(1, 2, 3, 4)));
  EXPECT_FALSE(host.contains(Ipv4Address(1, 2, 3, 5)));
}

TEST(FiveTuple, EqualityAndHash) {
  FiveTuple a{Ipv4Address(1, 1, 1, 1), Ipv4Address(2, 2, 2, 2), 1000, 80, 6};
  FiveTuple b = a;
  EXPECT_EQ(a, b);
  EXPECT_EQ(FiveTupleHash{}(a), FiveTupleHash{}(b));
  b.src_port = 1001;
  EXPECT_NE(a, b);
}

TEST(FiveTuple, HashSpreadsAcrossPorts) {
  std::unordered_set<std::size_t> hashes;
  FiveTuple t{Ipv4Address(1, 1, 1, 1), Ipv4Address(2, 2, 2, 2), 0, 80, 6};
  for (std::uint16_t p = 0; p < 1000; ++p) {
    t.src_port = p;
    hashes.insert(FiveTupleHash{}(t));
  }
  EXPECT_GT(hashes.size(), 990u);  // near-perfect spread
}

TEST(FiveTuple, ToStringMentionsEndpoints) {
  FiveTuple t{Ipv4Address(1, 2, 3, 4), Ipv4Address(5, 6, 7, 8), 1234, 80, 6};
  const std::string s = t.to_string();
  EXPECT_NE(s.find("1.2.3.4:1234"), std::string::npos);
  EXPECT_NE(s.find("5.6.7.8:80"), std::string::npos);
}

TEST(Protocol, Names) {
  EXPECT_STREQ(to_string(Protocol::tcp), "TCP");
  EXPECT_STREQ(to_string(Protocol::udp), "UDP");
  EXPECT_STREQ(to_string(Protocol::icmp), "ICMP");
}

TEST(PacketRecord, TimestampOrdering) {
  PacketRecord a;
  a.timestamp = 1.0;
  PacketRecord b;
  b.timestamp = 2.0;
  EXPECT_TRUE(ByTimestamp{}(a, b));
  EXPECT_FALSE(ByTimestamp{}(b, a));
}

}  // namespace
}  // namespace fbm::net
