#include "net/lpm.hpp"

#include <gtest/gtest.h>

#include "stats/rng.hpp"

namespace fbm::net {
namespace {

Prefix pfx(const char* addr, int len) {
  return Prefix(*Ipv4Address::parse(addr), len);
}

TEST(RoutingTable, EmptyTableMatchesNothing) {
  RoutingTable t;
  EXPECT_TRUE(t.empty());
  EXPECT_FALSE(t.lookup(Ipv4Address(1, 2, 3, 4)).has_value());
}

TEST(RoutingTable, ExactAndLongestMatch) {
  RoutingTable t;
  t.insert(pfx("10.0.0.0", 8), 1);
  t.insert(pfx("10.1.0.0", 16), 2);
  t.insert(pfx("10.1.2.0", 24), 3);
  EXPECT_EQ(t.lookup(Ipv4Address(10, 1, 2, 3)).value(), 3u);   // /24 wins
  EXPECT_EQ(t.lookup(Ipv4Address(10, 1, 9, 9)).value(), 2u);   // /16
  EXPECT_EQ(t.lookup(Ipv4Address(10, 9, 9, 9)).value(), 1u);   // /8
  EXPECT_FALSE(t.lookup(Ipv4Address(11, 0, 0, 1)).has_value());
}

TEST(RoutingTable, LookupPrefixReturnsMatchLength) {
  RoutingTable t;
  t.insert(pfx("10.0.0.0", 8), 1);
  t.insert(pfx("10.1.0.0", 16), 2);
  const auto p = t.lookup_prefix(Ipv4Address(10, 1, 2, 3));
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->length(), 16);
  EXPECT_EQ(p->network().to_string(), "10.1.0.0");
}

TEST(RoutingTable, DefaultRoute) {
  RoutingTable t;
  t.insert(pfx("0.0.0.0", 0), 99);
  EXPECT_EQ(t.lookup(Ipv4Address(203, 0, 113, 1)).value(), 99u);
}

TEST(RoutingTable, InsertReplacesAndReportsPrevious) {
  RoutingTable t;
  EXPECT_FALSE(t.insert(pfx("10.0.0.0", 8), 1).has_value());
  const auto prev = t.insert(pfx("10.0.0.0", 8), 2);
  ASSERT_TRUE(prev.has_value());
  EXPECT_EQ(*prev, 1u);
  EXPECT_EQ(t.size(), 1u);
  EXPECT_EQ(t.lookup(Ipv4Address(10, 0, 0, 1)).value(), 2u);
}

TEST(RoutingTable, Erase) {
  RoutingTable t;
  t.insert(pfx("10.0.0.0", 8), 1);
  t.insert(pfx("10.1.0.0", 16), 2);
  EXPECT_TRUE(t.erase(pfx("10.1.0.0", 16)));
  EXPECT_FALSE(t.erase(pfx("10.1.0.0", 16)));  // already gone
  EXPECT_FALSE(t.erase(pfx("99.0.0.0", 8)));   // never present
  EXPECT_EQ(t.size(), 1u);
  // Falls back to the /8 after the more-specific is removed.
  EXPECT_EQ(t.lookup(Ipv4Address(10, 1, 0, 1)).value(), 1u);
}

TEST(RoutingTable, HostRoutes) {
  RoutingTable t;
  t.insert(pfx("192.0.2.1", 32), 7);
  EXPECT_EQ(t.lookup(Ipv4Address(192, 0, 2, 1)).value(), 7u);
  EXPECT_FALSE(t.lookup(Ipv4Address(192, 0, 2, 2)).has_value());
}

// The engine's multi-link demux rides on this table (src/engine/), so the
// edge cases below are load-bearing for link routing, not just flow keying.

TEST(RoutingTable, OverlapFallsThroughEveryLevel) {
  // /0 default under /8 under /24 under /32: each address lands on the
  // longest cover, and erasing a level re-exposes the next shorter one.
  RoutingTable t;
  t.insert(pfx("0.0.0.0", 0), 0);
  t.insert(pfx("10.0.0.0", 8), 8);
  t.insert(pfx("10.0.0.0", 24), 24);
  t.insert(pfx("10.0.0.80", 32), 32);
  EXPECT_EQ(t.lookup(Ipv4Address(10, 0, 0, 80)).value(), 32u);
  EXPECT_EQ(t.lookup(Ipv4Address(10, 0, 0, 81)).value(), 24u);
  EXPECT_EQ(t.lookup(Ipv4Address(10, 0, 1, 80)).value(), 8u);
  EXPECT_EQ(t.lookup(Ipv4Address(11, 0, 0, 80)).value(), 0u);
  EXPECT_TRUE(t.erase(pfx("10.0.0.80", 32)));
  EXPECT_EQ(t.lookup(Ipv4Address(10, 0, 0, 80)).value(), 24u);
  EXPECT_TRUE(t.erase(pfx("10.0.0.0", 24)));
  EXPECT_EQ(t.lookup(Ipv4Address(10, 0, 0, 80)).value(), 8u);
  EXPECT_TRUE(t.erase(pfx("10.0.0.0", 8)));
  EXPECT_EQ(t.lookup(Ipv4Address(10, 0, 0, 80)).value(), 0u);
}

TEST(RoutingTable, MissOnSiblingBranchDespiteDeepEntries) {
  // A populated table must still miss when only sibling branches are
  // installed — the walk passes through non-terminal interior nodes.
  RoutingTable t;
  t.insert(pfx("10.1.2.0", 24), 1);
  t.insert(pfx("10.1.3.0", 24), 2);
  EXPECT_FALSE(t.lookup(Ipv4Address(10, 1, 4, 1)).has_value());   // uncle
  EXPECT_FALSE(t.lookup(Ipv4Address(10, 2, 2, 1)).has_value());   // higher
  EXPECT_FALSE(t.lookup(Ipv4Address(192, 0, 2, 1)).has_value());  // far off
  EXPECT_EQ(t.lookup(Ipv4Address(10, 1, 2, 1)).value(), 1u);
}

TEST(RoutingTable, DefaultRouteReplaceAndErase) {
  RoutingTable t;
  t.insert(pfx("0.0.0.0", 0), 1);
  const auto prev = t.insert(pfx("0.0.0.0", 0), 2);  // replace, not add
  ASSERT_TRUE(prev.has_value());
  EXPECT_EQ(*prev, 1u);
  EXPECT_EQ(t.size(), 1u);
  EXPECT_EQ(t.lookup(Ipv4Address(203, 0, 113, 1)).value(), 2u);
  const auto p = t.lookup_prefix(Ipv4Address(203, 0, 113, 1));
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->length(), 0);
  EXPECT_TRUE(t.erase(pfx("0.0.0.0", 0)));
  EXPECT_TRUE(t.empty());
  EXPECT_FALSE(t.lookup(Ipv4Address(203, 0, 113, 1)).has_value());
}

TEST(RoutingTable, AdjacentHostRoutesStayDistinct) {
  // /32 twins differing in the last bit: the deepest possible fork.
  RoutingTable t;
  t.insert(pfx("192.0.2.6", 32), 6);
  t.insert(pfx("192.0.2.7", 32), 7);
  EXPECT_EQ(t.lookup(Ipv4Address(192, 0, 2, 6)).value(), 6u);
  EXPECT_EQ(t.lookup(Ipv4Address(192, 0, 2, 7)).value(), 7u);
  const auto p = t.lookup_prefix(Ipv4Address(192, 0, 2, 7));
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->to_string(), "192.0.2.7/32");
  EXPECT_TRUE(t.erase(pfx("192.0.2.7", 32)));
  EXPECT_FALSE(t.lookup(Ipv4Address(192, 0, 2, 7)).has_value());
  EXPECT_EQ(t.lookup(Ipv4Address(192, 0, 2, 6)).value(), 6u);
}

TEST(RoutingTable, NonCanonicalPrefixCanonicalizes) {
  // Host bits below the mask are zeroed at construction, so insert, lookup
  // and erase all agree on the canonical entry.
  RoutingTable t;
  t.insert(pfx("10.1.2.3", 16), 1);
  EXPECT_EQ(t.lookup(Ipv4Address(10, 1, 200, 200)).value(), 1u);
  const auto p = t.lookup_prefix(Ipv4Address(10, 1, 0, 1));
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->to_string(), "10.1.0.0/16");
  EXPECT_TRUE(t.erase(pfx("10.1.99.99", 16)));
  EXPECT_TRUE(t.empty());
}

TEST(RoutingTable, EntriesRoundTrip) {
  RoutingTable t;
  t.insert(pfx("10.0.0.0", 8), 1);
  t.insert(pfx("172.16.0.0", 16), 2);
  t.insert(pfx("192.168.1.0", 24), 3);
  const auto entries = t.entries();
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_EQ(entries[0].prefix.to_string(), "10.0.0.0/8");
  EXPECT_EQ(entries[1].prefix.to_string(), "172.16.0.0/16");
  EXPECT_EQ(entries[2].prefix.to_string(), "192.168.1.0/24");
  EXPECT_EQ(entries[2].route_id, 3u);
}

TEST(RoutingTable, AgreesWithLinearScanOnRandomWorkload) {
  // Property test: trie lookup == brute-force longest-match over the entry
  // list, for random tables and random addresses.
  stats::Rng rng(404);
  RoutingTable t;
  std::vector<RoutingTable::Entry> entries;
  for (int i = 0; i < 300; ++i) {
    const auto addr =
        Ipv4Address{static_cast<std::uint32_t>(rng.uniform_int(0, ~0u))};
    const int len = static_cast<int>(rng.uniform_int(0, 4)) * 8;
    const Prefix p(addr, len);
    t.insert(p, static_cast<std::uint32_t>(i));
  }
  entries = t.entries();
  for (int i = 0; i < 2000; ++i) {
    const auto addr =
        Ipv4Address{static_cast<std::uint32_t>(rng.uniform_int(0, ~0u))};
    std::optional<std::uint32_t> best;
    int best_len = -1;
    for (const auto& e : entries) {
      if (e.prefix.contains(addr) && e.prefix.length() > best_len) {
        best = e.route_id;
        best_len = e.prefix.length();
      }
    }
    EXPECT_EQ(t.lookup(addr), best) << addr.to_string();
  }
}

TEST(RoutingTable, EraseReclaimsInteriorNodes) {
  // An insert/erase cycle must not leak interior trie nodes: erase prunes
  // childless non-terminal paths onto a free list that insert() reuses, so
  // repeated attach/detach keeps node_count() bounded.
  RoutingTable t;
  t.insert(pfx("10.0.0.0", 8), 1);  // a resident entry erase must not touch
  const std::size_t resident_nodes = t.node_count();
  for (int cycle = 0; cycle < 1000; ++cycle) {
    ASSERT_FALSE(t.insert(pfx("172.16.0.0", 12), 7).has_value());
    ASSERT_FALSE(t.insert(pfx("192.168.31.0", 24), 8).has_value());
    EXPECT_EQ(t.size(), 3u);
    ASSERT_TRUE(t.erase(pfx("172.16.0.0", 12)));
    ASSERT_TRUE(t.erase(pfx("192.168.31.0", 24)));
    EXPECT_EQ(t.size(), 1u);
    EXPECT_EQ(t.node_count(), resident_nodes);
  }
  // The resident entry is untouched throughout.
  EXPECT_EQ(t.lookup(Ipv4Address(10, 1, 2, 3)).value(), 1u);
  const auto entries = t.entries();
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].prefix, pfx("10.0.0.0", 8));
  EXPECT_EQ(entries[0].route_id, 1u);
}

TEST(RoutingTable, ErasePrunesOnlyUpToSharedAncestor) {
  // Erasing a /24 under a live /16 must keep the /16's path intact and
  // reclaim exactly the nodes below it.
  RoutingTable t;
  t.insert(pfx("10.1.0.0", 16), 1);
  const std::size_t before = t.node_count();
  t.insert(pfx("10.1.2.0", 24), 2);
  ASSERT_TRUE(t.erase(pfx("10.1.2.0", 24)));
  EXPECT_EQ(t.node_count(), before);
  EXPECT_EQ(t.lookup(Ipv4Address(10, 1, 2, 3)).value(), 1u);  // /16 intact
  ASSERT_EQ(t.entries().size(), 1u);
}

TEST(RoutingTable, EraseKeepsTerminalInteriorNode) {
  // A /8 that is itself an entry sits on the /24's path: erasing the /24
  // prunes only below the /8, never the terminal node itself.
  RoutingTable t;
  t.insert(pfx("10.0.0.0", 8), 1);
  t.insert(pfx("10.1.2.0", 24), 2);
  ASSERT_TRUE(t.erase(pfx("10.1.2.0", 24)));
  EXPECT_EQ(t.lookup(Ipv4Address(10, 1, 2, 3)).value(), 1u);
  ASSERT_TRUE(t.erase(pfx("10.0.0.0", 8)));
  EXPECT_TRUE(t.empty());
  // Only the root remains live.
  EXPECT_EQ(t.node_count(), 1u);
}

TEST(RoutingTable, LookupBatchMatchesScalarLookup) {
  const auto fib = make_synthetic_fib(512, 99);
  stats::Rng rng(1234);
  constexpr std::uint32_t kMiss = 0xffffffffu;
  std::vector<std::uint32_t> addrs;
  for (int i = 0; i < 4096; ++i) {
    addrs.push_back(static_cast<std::uint32_t>(rng.uniform_int(0, 1u << 31)));
  }
  std::vector<std::uint32_t> out(addrs.size(), 0);
  fib.lookup_batch(addrs.data(), addrs.size(), out.data(), kMiss);
  for (std::size_t i = 0; i < addrs.size(); ++i) {
    const auto scalar = fib.lookup(Ipv4Address(addrs[i]));
    EXPECT_EQ(out[i], scalar.value_or(kMiss)) << Ipv4Address(addrs[i]).to_string();
  }
}

TEST(SyntheticFib, HasRequestedSizeAndMix) {
  const auto fib = make_synthetic_fib(1000, 42);
  EXPECT_EQ(fib.size(), 1000u);
  std::size_t len8 = 0;
  std::size_t len16 = 0;
  std::size_t len24 = 0;
  for (const auto& e : fib.entries()) {
    if (e.prefix.length() == 8) ++len8;
    if (e.prefix.length() == 16) ++len16;
    if (e.prefix.length() == 24) ++len24;
  }
  EXPECT_EQ(len8 + len16 + len24, fib.size());
  EXPECT_GT(len24, len16 / 2);
  EXPECT_GT(len16, len8);
}

TEST(SyntheticFib, Deterministic) {
  const auto a = make_synthetic_fib(100, 7);
  const auto b = make_synthetic_fib(100, 7);
  const auto ea = a.entries();
  const auto eb = b.entries();
  ASSERT_EQ(ea.size(), eb.size());
  for (std::size_t i = 0; i < ea.size(); ++i) {
    EXPECT_EQ(ea[i].prefix, eb[i].prefix);
  }
}

}  // namespace
}  // namespace fbm::net
