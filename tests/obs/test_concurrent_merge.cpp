// Concurrency tests for the obs instruments — written to be meaningful
// under ThreadSanitizer (FBM_SANITIZE=thread): writers hammer their private
// cells while a scraper merges, and the totals must come out exact once the
// writers quiesce. No test here sleeps; contention comes from raw loops.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/registry.hpp"

namespace fbm {
namespace {

/// MetricMeta builder (field assignment, not designated init, so omitted
/// descriptor fields don't trip -Wmissing-field-initializers).
obs::MetricMeta meta(
    std::string name, std::string unit = {},
    std::vector<std::pair<std::string, std::string>> labels = {}) {
  obs::MetricMeta m;
  m.name = std::move(name);
  m.unit = std::move(unit);
  m.labels = std::move(labels);
  return m;
}

TEST(ObsConcurrent, ShardedCounterExactUnderContention) {
  obs::ShardedCounter family;
  constexpr int kWriters = 8;
  constexpr std::uint64_t kAdds = 20000;

  std::atomic<bool> stop{false};
  std::thread scraper([&] {
    // Scrape continuously while writers run; every read must be torn-free
    // (TSan checks the synchronization, the final assert checks the math).
    std::uint64_t last = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      const std::uint64_t v = family.value();
      EXPECT_GE(v, last);  // monotonic: adds only, folds preserve totals
      last = v;
    }
  });

  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&family] {
      // Acquire, write, and destroy the local mid-run so fold-on-destroy
      // races against the scraper too.
      for (int half = 0; half < 2; ++half) {
        obs::ShardedCounter::Local cell = family.local();
        for (std::uint64_t i = 0; i < kAdds / 2; ++i) cell.add(1);
      }
    });
  }
  for (auto& t : writers) t.join();
  stop.store(true, std::memory_order_relaxed);
  scraper.join();

  EXPECT_EQ(family.value(), kWriters * kAdds);
}

TEST(ObsConcurrent, SnapshotWhileObserving) {
  obs::Registry reg;
  obs::Counter& packets = reg.counter(meta("t_packets_total", "packets"));
  obs::Histogram& seconds =
      reg.histogram(meta("t_stage_seconds", "seconds"),
                    obs::log_scale_bounds(1e-6, 4.0, 10));

  constexpr int kWriters = 4;
  constexpr int kObservations = 10000;
  std::atomic<bool> stop{false};
  std::thread scraper([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      const obs::Snapshot snap = reg.snapshot();
      ASSERT_EQ(snap.metrics.size(), 2u);
    }
  });

  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&] {
      for (int i = 0; i < kObservations; ++i) {
        packets.add(1);
        seconds.observe(1e-6 * (i % 7 + 1));
      }
    });
  }
  for (auto& t : writers) t.join();
  stop.store(true, std::memory_order_relaxed);
  scraper.join();

  const obs::Snapshot final_snap = reg.snapshot();
  const obs::MetricValue* p = final_snap.find("t_packets_total");
  const obs::MetricValue* s = final_snap.find("t_stage_seconds");
  ASSERT_NE(p, nullptr);
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(p->counter, static_cast<std::uint64_t>(kWriters) * kObservations);
  EXPECT_EQ(s->hist.count,
            static_cast<std::uint64_t>(kWriters) * kObservations);
  std::uint64_t bucket_total = 0;
  for (const std::uint64_t c : s->hist.counts) bucket_total += c;
  EXPECT_EQ(bucket_total, s->hist.count);
}

TEST(ObsConcurrent, RegistryResolveFromManyThreads) {
  obs::Registry reg;
  constexpr int kThreads = 8;
  std::vector<obs::Counter*> resolved(kThreads, nullptr);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg, &resolved, t] {
      obs::Counter& c =
          reg.counter(meta("t_shared_total", "", {{"k", "same"}}));
      c.add(1);
      resolved[static_cast<std::size_t>(t)] = &c;
    });
  }
  for (auto& t : threads) t.join();
  // Every thread must have resolved the same instrument exactly once.
  for (int t = 1; t < kThreads; ++t) {
    EXPECT_EQ(resolved[static_cast<std::size_t>(t)], resolved[0]);
  }
  EXPECT_EQ(resolved[0]->value(), static_cast<std::uint64_t>(kThreads));

  // Two quiesced snapshots are byte-for-byte deterministic.
  const obs::Snapshot a = reg.snapshot();
  const obs::Snapshot b = reg.snapshot();
  ASSERT_EQ(a.metrics.size(), b.metrics.size());
  for (std::size_t i = 0; i < a.metrics.size(); ++i) {
    EXPECT_EQ(a.metrics[i].meta.key(), b.metrics[i].meta.key());
    EXPECT_EQ(a.metrics[i].counter, b.metrics[i].counter);
  }
}

}  // namespace
}  // namespace fbm
