// Golden tests for the two metrics wire formats (src/obs/export.hpp).
// Both render from a Snapshot of a *local* registry, so the goldens are
// exact strings — no global metrics leak in, and any schema drift in the
// JSONL lines or the Prometheus exposition shows up as a byte diff here.
//
// The tail of the file holds the capture-validation hooks CI uses: when
// FBM_METRICS_JSONL / FBM_METRICS_PROM point at files produced by a real
// tool run (fbm_live --metrics ...), the tests re-validate them against the
// schema; without the env vars they skip.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "obs/export.hpp"
#include "obs/exporter.hpp"
#include "obs/registry.hpp"
#include "../support/json_fields.hpp"

namespace fbm {
namespace {

using testsupport::Field;
using testsupport::parse_fields;

/// MetricMeta builder (field assignment, not designated init, so omitted
/// descriptor fields don't trip -Wmissing-field-initializers).
obs::MetricMeta meta(
    std::string name, std::string help = {}, std::string unit = {},
    std::string stage = {},
    std::vector<std::pair<std::string, std::string>> labels = {}) {
  obs::MetricMeta m;
  m.name = std::move(name);
  m.help = std::move(help);
  m.unit = std::move(unit);
  m.stage = std::move(stage);
  m.labels = std::move(labels);
  return m;
}

/// One of each instrument with hand-picked values, so every branch of both
/// renderers appears in the goldens.
obs::Registry& sample_registry() {
  static obs::Registry* reg = [] {
    auto* r = new obs::Registry();
    obs::Counter& c = r->counter(meta("fbm_test_packets_total",
                                      "test packets", "packets", "classify",
                                      {{"shard", "0"}}));
    c.add(3);
    obs::Gauge& g = r->gauge(
        meta("fbm_test_queue_depth", "queued items", "items", "demux"));
    g.set(2.5);
    obs::Histogram& h = r->histogram(
        meta("fbm_test_seconds", "stage seconds", "seconds", "fit"),
        {0.5, 2.0});
    h.observe(0.25);
    h.observe(1.0);
    h.observe(5.0);  // overflow bucket
    return r;
  }();
  return *reg;
}

TEST(ObsExportGolden, JsonlEnvelopeAndMetricObjects) {
  const std::string line =
      obs::to_jsonl(sample_registry().snapshot(), /*seq=*/7,
                    /*uptime_s=*/1.25);
  EXPECT_EQ(
      line,
      "{\"schema\": \"fbm.metrics.v1\", \"seq\": 7, \"uptime_s\": 1.25, "
      "\"metrics\": ["
      "{\"name\": \"fbm_test_packets_total\", \"type\": \"counter\", "
      "\"unit\": \"packets\", \"stage\": \"classify\", "
      "\"labels\": {\"shard\": \"0\"}, \"value\": 3}, "
      "{\"name\": \"fbm_test_queue_depth\", \"type\": \"gauge\", "
      "\"unit\": \"items\", \"stage\": \"demux\", \"labels\": {}, "
      "\"value\": 2.5}, "
      "{\"name\": \"fbm_test_seconds\", \"type\": \"histogram\", "
      "\"unit\": \"seconds\", \"stage\": \"fit\", \"labels\": {}, "
      "\"bounds\": [0.5, 2], \"counts\": [1, 1, 1], \"count\": 3, "
      "\"sum\": 6.25}"
      "]}");
  // The embedded array is exactly what BenchReport's "obs" section reuses.
  const std::string bare =
      obs::to_json_metrics(sample_registry().snapshot());
  EXPECT_NE(line.find(bare), std::string::npos);
}

TEST(ObsExportGolden, PrometheusExposition) {
  const std::string text =
      obs::to_prometheus(sample_registry().snapshot());
  EXPECT_EQ(text,
            "# HELP fbm_test_packets_total test packets\n"
            "# TYPE fbm_test_packets_total counter\n"
            "fbm_test_packets_total{shard=\"0\"} 3\n"
            "# HELP fbm_test_queue_depth queued items\n"
            "# TYPE fbm_test_queue_depth gauge\n"
            "fbm_test_queue_depth 2.5\n"
            "# HELP fbm_test_seconds stage seconds\n"
            "# TYPE fbm_test_seconds histogram\n"
            "fbm_test_seconds_bucket{le=\"0.5\"} 1\n"
            "fbm_test_seconds_bucket{le=\"2\"} 2\n"
            "fbm_test_seconds_bucket{le=\"+Inf\"} 3\n"
            "fbm_test_seconds_sum 6.25\n"
            "fbm_test_seconds_count 3\n");
}

TEST(ObsExportGolden, PrometheusEscapesHelpAndLabels) {
  obs::Registry reg;
  obs::Gauge& g = reg.gauge(meta("fbm_esc", "line one\nline two", "", "",
                                 {{"path", "a\\b \"q\""}}));
  g.set(std::nan(""));
  const std::string text = obs::to_prometheus(reg.snapshot());
  EXPECT_NE(text.find("# HELP fbm_esc line one\\nline two\n"),
            std::string::npos);
  EXPECT_NE(text.find("fbm_esc{path=\"a\\\\b \\\"q\\\"\"} NaN\n"),
            std::string::npos);
}

TEST(ObsExportGolden, WriteFileAtomicLeavesNoTmp) {
  const std::string path =
      ::testing::TempDir() + "obs_atomic_golden.prom";
  ASSERT_TRUE(obs::write_file_atomic(path, "payload\n"));
  std::ifstream in(path);
  std::stringstream buf;
  buf << in.rdbuf();
  EXPECT_EQ(buf.str(), "payload\n");
  EXPECT_FALSE(std::ifstream(path + ".tmp").good());
  std::remove(path.c_str());
}

/// Validates one JSONL snapshot line: envelope keys in order, schema tag,
/// and every metric object self-describing (name/type/unit/stage/labels
/// plus a value or the histogram quadruple).
void validate_jsonl_line(const std::string& line, std::uint64_t expect_seq) {
  const auto fields = parse_fields(line);
  ASSERT_GE(fields.size(), 4u) << line;
  EXPECT_EQ(fields[0].key, "schema");
  EXPECT_EQ(fields[0].value, "\"fbm.metrics.v1\"");
  EXPECT_EQ(fields[1].key, "seq");
  EXPECT_EQ(fields[1].value, std::to_string(expect_seq));
  EXPECT_EQ(fields[2].key, "uptime_s");
  EXPECT_GE(std::strtod(fields[2].value.c_str(), nullptr), 0.0);
  EXPECT_EQ(fields[3].key, "metrics");
  EXPECT_EQ(fields[3].value, "[");
  // Each metric object opens with its descriptor keys in schema order.
  for (std::size_t i = 4; i < fields.size(); ++i) {
    if (fields[i].key != "name") continue;
    ASSERT_GE(fields.size(), i + 4) << line;
    EXPECT_EQ(fields[i + 1].key, "type");
    EXPECT_EQ(fields[i + 2].key, "unit");
    EXPECT_EQ(fields[i + 3].key, "stage");
    EXPECT_EQ(fields[i + 4].key, "labels");
    const std::string& type = fields[i + 1].value;
    EXPECT_TRUE(type == "\"counter\"" || type == "\"gauge\"" ||
                type == "\"histogram\"")
        << type;
  }
}

TEST(ObsExporter, FinishEmitsFinalSnapshotToBothSinks) {
  obs::Registry reg;
  reg.counter(meta("fbm_test_total")).add(42);
  obs::ExporterConfig cfg;
  cfg.jsonl_path = ::testing::TempDir() + "obs_exporter_test.jsonl";
  cfg.prom_path = ::testing::TempDir() + "obs_exporter_test.prom";
  cfg.every_s = 3600.0;  // cadence never fires; only finish() emits
  cfg.registry = &reg;
  {
    obs::MetricsExporter exporter(std::move(cfg));
    ASSERT_TRUE(exporter.active());
    exporter.tick();    // first tick always emits (never emitted before)
    exporter.tick();    // cadence not elapsed: no-op
    exporter.finish();  // forced final snapshot
    EXPECT_EQ(exporter.snapshots_written(), 2u);
  }
  std::ifstream jsonl(::testing::TempDir() + "obs_exporter_test.jsonl");
  std::string line;
  std::size_t lines = 0;
  while (std::getline(jsonl, line)) {
    if (!line.empty()) validate_jsonl_line(line, lines++);
  }
  EXPECT_EQ(lines, 2u);
  std::ifstream prom(::testing::TempDir() + "obs_exporter_test.prom");
  std::stringstream buf;
  buf << prom.rdbuf();
  EXPECT_NE(buf.str().find("fbm_test_total 42\n"), std::string::npos);
}

// ---------------------------------------------------------- CI capture hooks ---

TEST(MetricsJsonl, ValidatesCapturedFile) {
  const char* path = std::getenv("FBM_METRICS_JSONL");
  if (path == nullptr) GTEST_SKIP() << "FBM_METRICS_JSONL not set";
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "cannot open " << path;
  std::string line;
  std::uint64_t seq = 0;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    validate_jsonl_line(line, seq++);
  }
  EXPECT_GT(seq, 0u) << "no snapshot lines in " << path;
}

TEST(MetricsProm, ValidatesCapturedFile) {
  const char* path = std::getenv("FBM_METRICS_PROM");
  if (path == nullptr) GTEST_SKIP() << "FBM_METRICS_PROM not set";
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "cannot open " << path;
  std::string line;
  std::string last_typed_family;
  std::size_t samples = 0;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (line.rfind("# HELP ", 0) == 0) continue;
    if (line.rfind("# TYPE ", 0) == 0) {
      std::istringstream tokens(line.substr(7));
      std::string type;
      tokens >> last_typed_family >> type;
      EXPECT_TRUE(type == "counter" || type == "gauge" ||
                  type == "histogram")
          << line;
      continue;
    }
    // A sample: "name[{labels}] value" where name extends the last TYPE'd
    // family and the value parses as a Prometheus number.
    ASSERT_FALSE(last_typed_family.empty()) << "sample before TYPE: " << line;
    EXPECT_EQ(line.rfind(last_typed_family, 0), 0u) << line;
    const std::size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    const std::string value = line.substr(space + 1);
    if (value != "NaN" && value != "+Inf" && value != "-Inf") {
      char* end = nullptr;
      (void)std::strtod(value.c_str(), &end);
      EXPECT_EQ(*end, '\0') << line;
    }
    ++samples;
  }
  EXPECT_GT(samples, 0u) << "no samples in " << path;
}

}  // namespace
}  // namespace fbm
