// Unit tests for the obs instruments (src/obs/metrics.hpp) and registry
// (src/obs/registry.hpp): histogram bucket edges (zero, exact boundary,
// max bound, overflow, negative clamp), the log-scale bound helper,
// registry idempotence and type checking, sharded-counter fold-on-destroy,
// and snapshot deltas.
#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/registry.hpp"

namespace fbm {
namespace {

/// MetricMeta builder (field assignment, not designated init, so omitted
/// descriptor fields don't trip -Wmissing-field-initializers).
obs::MetricMeta meta(
    std::string name,
    std::vector<std::pair<std::string, std::string>> labels = {}) {
  obs::MetricMeta m;
  m.name = std::move(name);
  m.labels = std::move(labels);
  return m;
}

TEST(ObsHistogram, BucketEdgesAreUpperInclusive) {
  obs::Histogram h({1.0, 10.0, 100.0});
  h.observe(0.0);      // below the first bound
  h.observe(1.0);      // exactly on a bound stays in that bucket ("le")
  h.observe(1.5);
  h.observe(10.0);     // boundary again, second bucket
  h.observe(100.0);    // exactly the max bound: still in range
  h.observe(100.001);  // past the max bound: overflow bucket
  h.observe(-5.0);     // negative clamps into the first bucket

  const auto counts = h.counts();
  ASSERT_EQ(counts.size(), 4u);  // 3 bounds + overflow
  EXPECT_EQ(counts[0], 3u);      // 0.0, 1.0, -5.0
  EXPECT_EQ(counts[1], 2u);      // 1.5, 10.0
  EXPECT_EQ(counts[2], 1u);      // 100.0
  EXPECT_EQ(counts[3], 1u);      // 100.001
  EXPECT_EQ(h.count(), 7u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.0 + 1.0 + 1.5 + 10.0 + 100.0 + 100.001 - 5.0);
}

TEST(ObsHistogram, RejectsBadBounds) {
  EXPECT_THROW(obs::Histogram(std::vector<double>{}), std::invalid_argument);
  EXPECT_THROW(obs::Histogram({1.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(obs::Histogram({2.0, 1.0}), std::invalid_argument);
}

TEST(ObsHistogram, LogScaleBounds) {
  const auto bounds = obs::log_scale_bounds(1e-6, 4.0, 5);
  ASSERT_EQ(bounds.size(), 5u);
  EXPECT_DOUBLE_EQ(bounds[0], 1e-6);
  for (std::size_t i = 1; i < bounds.size(); ++i) {
    EXPECT_DOUBLE_EQ(bounds[i], bounds[i - 1] * 4.0);
  }
  EXPECT_THROW(obs::log_scale_bounds(0.0, 4.0, 5), std::invalid_argument);
  EXPECT_THROW(obs::log_scale_bounds(1.0, 1.0, 5), std::invalid_argument);
  EXPECT_THROW(obs::log_scale_bounds(1.0, 4.0, 0), std::invalid_argument);
}

TEST(ObsShardedCounter, FoldsDeadLocalsIntoBase) {
  obs::ShardedCounter family;
  {
    obs::ShardedCounter::Local a = family.local();
    obs::ShardedCounter::Local b = family.local();
    a.add(10);
    b.add(5);
    EXPECT_EQ(family.value(), 15u);  // live cells merge at scrape time
  }
  // Both locals died: their counts must survive in the base.
  EXPECT_EQ(family.value(), 15u);

  // A recycled cell starts from zero, not from the dead owner's count.
  obs::ShardedCounter::Local c = family.local();
  c.add(1);
  EXPECT_EQ(family.value(), 16u);
}

TEST(ObsShardedCounter, LocalMoveTransfersOwnership) {
  obs::ShardedCounter family;
  obs::ShardedCounter::Local a = family.local();
  a.add(3);
  obs::ShardedCounter::Local b = std::move(a);
  a.add(100);  // moved-from: must be a no-op, not a crash
  b.add(4);
  EXPECT_EQ(family.value(), 7u);
}

TEST(ObsRegistry, LookupsAreIdempotent) {
  obs::Registry reg;
  obs::Counter& c1 = reg.counter(meta("t_total", {{"s", "0"}}));
  obs::Counter& c2 = reg.counter(meta("t_total", {{"s", "0"}}));
  EXPECT_EQ(&c1, &c2);
  // A different label set is a different instrument.
  obs::Counter& c3 = reg.counter(meta("t_total", {{"s", "1"}}));
  EXPECT_NE(&c1, &c3);
  // Histogram bounds are fixed at first registration; later bounds ignored.
  obs::Histogram& h1 = reg.histogram(meta("t_seconds"), {1.0, 2.0});
  obs::Histogram& h2 = reg.histogram(meta("t_seconds"), {9.0});
  EXPECT_EQ(&h1, &h2);
  EXPECT_EQ(h2.bounds(), (std::vector<double>{1.0, 2.0}));
}

TEST(ObsRegistry, TypeMismatchThrows) {
  obs::Registry reg;
  (void)reg.counter(meta("t_total"));
  EXPECT_THROW((void)reg.gauge(meta("t_total")), std::logic_error);
  EXPECT_THROW((void)reg.histogram(meta("t_total"), {1.0}),
               std::logic_error);
}

TEST(ObsRegistry, MetricKeyRendersLabelsInOrder) {
  obs::MetricMeta meta;
  meta.name = "fbm_x_total";
  EXPECT_EQ(meta.key(), "fbm_x_total");
  meta.labels = {{"link", "eth0"}, {"shard", "3"}};
  EXPECT_EQ(meta.key(), "fbm_x_total{link=\"eth0\",shard=\"3\"}");
}

TEST(ObsRegistry, SnapshotIsSortedByKey) {
  obs::Registry reg;
  reg.counter(meta("z_total")).add(1);
  reg.counter(meta("a_total")).add(2);
  const obs::Snapshot snap = reg.snapshot();
  ASSERT_EQ(snap.metrics.size(), 2u);
  EXPECT_EQ(snap.metrics[0].meta.name, "a_total");
  EXPECT_EQ(snap.metrics[1].meta.name, "z_total");
  ASSERT_NE(snap.find("z_total"), nullptr);
  EXPECT_EQ(snap.find("z_total")->counter, 1u);
  EXPECT_EQ(snap.find("missing"), nullptr);
}

TEST(ObsDelta, CountersAndHistogramsSubtractGaugesKeepAfter) {
  obs::Registry reg;
  obs::Counter& c = reg.counter(meta("t_total"));
  obs::Gauge& g = reg.gauge(meta("t_depth"));
  obs::Histogram& h = reg.histogram(meta("t_seconds"), {1.0, 10.0});
  c.add(5);
  g.set(7.0);
  h.observe(0.5);
  const obs::Snapshot before = reg.snapshot();
  c.add(3);
  g.set(2.0);
  h.observe(0.5);
  h.observe(4.0);
  const obs::Snapshot after = reg.snapshot();

  const obs::Snapshot d = obs::delta(before, after);
  // All metrics survive the delta, including would-be zeros.
  ASSERT_EQ(d.metrics.size(), 3u);
  EXPECT_EQ(d.find("t_total")->counter, 3u);
  EXPECT_DOUBLE_EQ(d.find("t_depth")->gauge, 2.0);  // point-in-time
  const obs::MetricValue* dh = d.find("t_seconds");
  ASSERT_NE(dh, nullptr);
  EXPECT_EQ(dh->hist.count, 2u);
  EXPECT_EQ(dh->hist.counts, (std::vector<std::uint64_t>{1, 1, 0}));
  EXPECT_DOUBLE_EQ(dh->hist.sum, 4.5);
}

TEST(ObsDelta, SubtractionSaturatesOnRewind) {
  // A checkpoint restore can rewind counters below the "before" snapshot;
  // the delta must clamp at zero instead of wrapping.
  obs::Registry reg;
  obs::Counter& c = reg.counter(meta("t_total"));
  c.add(10);
  const obs::Snapshot high = reg.snapshot();
  // delta(high, low): after < before.
  obs::Registry reg2;
  reg2.counter(meta("t_total")).add(4);
  const obs::Snapshot low = reg2.snapshot();
  const obs::Snapshot d = obs::delta(high, low);
  EXPECT_EQ(d.find("t_total")->counter, 0u);
}

TEST(ObsDelta, MetricsMissingFromBeforePassThrough) {
  obs::Registry reg;
  reg.counter(meta("t_total")).add(2);
  const obs::Snapshot before = reg.snapshot();
  reg.counter(meta("u_total")).add(9);
  const obs::Snapshot after = reg.snapshot();
  const obs::Snapshot d = obs::delta(before, after);
  EXPECT_EQ(d.find("u_total")->counter, 9u);
  EXPECT_EQ(d.find("t_total")->counter, 0u);
}

TEST(ObsEnabled, KillSwitchTogglesProcessWide) {
  const bool prev = obs::enabled();
  obs::set_enabled(false);
  EXPECT_FALSE(obs::enabled());
  obs::set_enabled(true);
  EXPECT_TRUE(obs::enabled());
  obs::set_enabled(prev);
}

}  // namespace
}  // namespace fbm
