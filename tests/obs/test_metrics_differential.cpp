// Differential guard for the telemetry layer's core promise: metrics NEVER
// change analysis results. The same trace analyzed with obs enabled and
// disabled must produce byte-identical JSON reports — across both flow
// definitions and both the serial and sharded pipelines. A violation means
// an instrumentation site leaked into the data path (reordered floats,
// consumed entropy, perturbed a container) and must be found, not averaged
// away.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "api/api.hpp"
#include "obs/metrics.hpp"
#include "trace/synthetic.hpp"

namespace fbm {
namespace {

/// Restores the process-wide obs switch no matter how the test exits, so a
/// failure here cannot bleed a disabled registry into later tests.
class EnabledGuard {
 public:
  EnabledGuard() : prev_(obs::enabled()) {}
  ~EnabledGuard() { obs::set_enabled(prev_); }
  EnabledGuard(const EnabledGuard&) = delete;
  EnabledGuard& operator=(const EnabledGuard&) = delete;

 private:
  bool prev_;
};

std::vector<net::PacketRecord> seeded_trace() {
  trace::SyntheticConfig cfg;
  cfg.duration_s = 45.0;
  cfg.apply_defaults();
  cfg.target_utilization_bps(6e6);
  cfg.seed = 4242;
  return trace::generate_packets(cfg);
}

/// Every interval report of one full analysis, serialized — the byte string
/// the two runs must agree on.
std::string analysis_bytes(const std::vector<net::PacketRecord>& packets,
                           api::FlowDefinition def, std::size_t threads) {
  api::AnalysisConfig config;
  config.flow_definition(def)
      .interval_s(15.0)
      .timeout_s(1.0)
      .min_flows(0)
      .keep_flows(true)
      .threads(threads);
  std::string out;
  for (const auto& report : api::analyze(packets, config)) {
    out += api::to_json(report);
    out += '\n';
  }
  return out;
}

TEST(MetricsDifferential, AnalysisBytesIdenticalOnAndOff) {
  const EnabledGuard guard;
  const auto packets = seeded_trace();
  for (const auto def :
       {api::FlowDefinition::five_tuple, api::FlowDefinition::prefix24}) {
    for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
      obs::set_enabled(false);
      const std::string off = analysis_bytes(packets, def, threads);
      obs::set_enabled(true);
      const std::string on = analysis_bytes(packets, def, threads);
      ASSERT_FALSE(off.empty());
      EXPECT_EQ(off, on)
          << "metrics changed analysis output (def="
          << (def == api::FlowDefinition::prefix24 ? "prefix24"
                                                   : "five_tuple")
          << ", threads=" << threads << ")";
    }
  }
}

}  // namespace
}  // namespace fbm
