// perf::BenchReport schema: the BENCH_*.json files are consumed by the CI
// regression gate and external dashboards, so the key set and nesting are
// contractual. The emitted JSON must parse with the same field scanner the
// golden-report regression uses.
#include "perf/bench_report.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <string>
#include <vector>

#include "../support/json_fields.hpp"
#include "perf/counters.hpp"
#include "perf/stopwatch.hpp"

#ifdef FBM_HAVE_BENCH_COMMON
#include "common.hpp"
#endif

namespace fbm {
namespace {

using testsupport::Field;
using testsupport::parse_fields;

perf::BenchReport sample_report() {
  perf::BenchReport report;
  report.bench = "schema_probe";
  report.set_config("threads", std::uint64_t{4});
  report.set_config("quick", true);
  report.set_config("label", std::string("scaled sprint corpus"));
  report.set_config("time_scale", 1.0 / 60.0);
  report.wall_s = 1.5;
  report.packets_per_s = 250000.0;
  report.peak_rss_kb = 10240;
  report.counters.packets = 375000;
  report.counters.flows = 420;
  report.counters.intervals = 7;
  report.counters.windows = 12;
  report.counters.bytes_classified = 99u * 1024 * 1024;
  report.set_metric("classify_flat_vs_std_speedup", 1.4);
  report.git_sha = "deadbeef";
  return report;
}

std::vector<std::string> keys_of(const std::vector<Field>& fields) {
  std::vector<std::string> keys;
  keys.reserve(fields.size());
  for (const auto& f : fields) keys.push_back(f.key);
  return keys;
}

const Field& field_named(const std::vector<Field>& fields,
                         const std::string& key) {
  static const Field missing{"<missing>", "<missing>"};
  const auto it =
      std::find_if(fields.begin(), fields.end(),
                   [&](const Field& f) { return f.key == key; });
  EXPECT_NE(it, fields.end()) << "missing key " << key;
  return it == fields.end() ? missing : *it;
}

TEST(BenchReport, JsonParsesWithTheGoldenReportReader) {
  const auto fields = parse_fields(sample_report().to_json());
  const auto keys = keys_of(fields);

  // The stable schema: these keys exist, in this document order.
  const char* required[] = {"bench",       "config",        "metrics",
                            "wall_s",      "packets_per_s", "peak_rss_kb",
                            "git_sha"};
  std::size_t cursor = 0;
  for (const char* key : required) {
    const auto it = std::find(keys.begin() + static_cast<std::ptrdiff_t>(cursor),
                              keys.end(), key);
    ASSERT_NE(it, keys.end()) << "missing or out of order: " << key;
    cursor = static_cast<std::size_t>(it - keys.begin()) + 1;
  }

  EXPECT_EQ(field_named(fields, "bench").value, "\"schema_probe\"");
  EXPECT_EQ(field_named(fields, "git_sha").value, "\"deadbeef\"");
  EXPECT_EQ(field_named(fields, "config").value, "{");
  EXPECT_EQ(field_named(fields, "metrics").value, "{");
}

TEST(BenchReport, NumericFieldsRoundTrip) {
  const auto fields = parse_fields(sample_report().to_json());
  const auto numeric = [&](const std::string& key) {
    return std::strtod(field_named(fields, key).value.c_str(), nullptr);
  };
  EXPECT_DOUBLE_EQ(numeric("wall_s"), 1.5);
  EXPECT_DOUBLE_EQ(numeric("packets_per_s"), 250000.0);
  EXPECT_DOUBLE_EQ(numeric("peak_rss_kb"), 10240.0);
  EXPECT_DOUBLE_EQ(numeric("packets"), 375000.0);
  EXPECT_DOUBLE_EQ(numeric("flows"), 420.0);
  EXPECT_DOUBLE_EQ(numeric("intervals"), 7.0);
  EXPECT_DOUBLE_EQ(numeric("windows"), 12.0);
  EXPECT_DOUBLE_EQ(numeric("classify_flat_vs_std_speedup"), 1.4);
  EXPECT_DOUBLE_EQ(numeric("threads"), 4.0);
  EXPECT_DOUBLE_EQ(numeric("time_scale"), 1.0 / 60.0);
  EXPECT_DOUBLE_EQ(numeric("bytes_classified"), 99.0 * 1024 * 1024);
}

TEST(BenchReport, QuotesAreEscapedInStrings) {
  perf::BenchReport report = sample_report();
  report.set_config("note", std::string("a \"quoted\" token"));
  const std::string json = report.to_json();
  EXPECT_NE(json.find("\"a \\\"quoted\\\" token\""), std::string::npos);
}

TEST(BenchReport, SummaryWrapsEveryReport) {
  const perf::BenchReport a = sample_report();
  perf::BenchReport b = sample_report();
  b.bench = "second_probe";
  const std::vector<perf::BenchReport> reports = {a, b};
  const auto fields = parse_fields(perf::summary_json(reports));
  const auto keys = keys_of(fields);
  EXPECT_EQ(std::count(keys.begin(), keys.end(), "bench"), 2);
  EXPECT_EQ(field_named(fields, "schema").value, "1");
  EXPECT_EQ(field_named(fields, "benches").value, "[");
}

TEST(BenchReport, PeakRssIsReported) {
  // getrusage must yield something plausible for a running test binary.
  EXPECT_GT(perf::peak_rss_kb(), 1000u);
}

TEST(Stopwatch, MeasuresForwardTime) {
  perf::Stopwatch watch;
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink = sink + 1.0;
  EXPECT_GE(watch.elapsed_s(), 0.0);
  watch.reset();
  EXPECT_LT(watch.elapsed_s(), 1.0);
}

TEST(Counters, Accumulate) {
  perf::Counters total;
  perf::Counters part;
  part.packets = 10;
  part.flows = 2;
  part.intervals = 1;
  part.windows = 3;
  part.bytes_classified = 1500;
  total += part;
  total += part;
  EXPECT_EQ(total.packets, 20u);
  EXPECT_EQ(total.flows, 4u);
  EXPECT_EQ(total.intervals, 2u);
  EXPECT_EQ(total.windows, 6u);
  EXPECT_EQ(total.bytes_classified, 3000u);
}

#ifdef FBM_HAVE_BENCH_COMMON

int schema_probe_bench(bench::Context& ctx) {
  ctx.count_packets(1000);
  ctx.count_bytes(500000);
  ctx.report().set_metric("probe_metric", 3.25);
  // Burn a hair of wall time so packets_per_s is finite and positive.
  perf::Stopwatch watch;
  while (watch.elapsed_s() <= 0.0) {
  }
  return 0;
}

TEST(BenchRegistry, RunRegisteredEmitsParseableTelemetry) {
  // Registered here (not via FBM_BENCH: the test binary must not grow a
  // main), then run through the exact path fbm_bench --quick uses.
  const bench::BenchInfo info{"schema_probe", &schema_probe_bench};
  perf::BenchReport report;
  const int rc = bench::run_registered(info, /*quick=*/true, report);
  EXPECT_EQ(rc, 0);

  EXPECT_EQ(report.bench, "schema_probe");
  EXPECT_GT(report.wall_s, 0.0);
  EXPECT_GT(report.packets_per_s, 0.0);
  EXPECT_EQ(report.counters.packets, 1000u);

  const auto fields = parse_fields(report.to_json());
  // Resolved config the satellites demand: threads (cached env read) and
  // the quick flag land in every report.
  EXPECT_EQ(field_named(fields, "threads").value,
            std::to_string(bench::bench_threads()));
  EXPECT_EQ(field_named(fields, "quick").value, "true");
  EXPECT_DOUBLE_EQ(
      std::strtod(field_named(fields, "probe_metric").value.c_str(),
                  nullptr),
      3.25);
  EXPECT_DOUBLE_EQ(
      std::strtod(field_named(fields, "packets").value.c_str(), nullptr),
      1000.0);
}

TEST(BenchRegistry, BenchThreadsIsCachedPerProcess) {
  // The first call resolves FBM_BENCH_THREADS; later env changes must not
  // flip the value mid-run (the satellite fix for per-call getenv).
  const std::size_t resolved = bench::bench_threads();
  ASSERT_EQ(setenv("FBM_BENCH_THREADS", "97", /*overwrite=*/1), 0);
  EXPECT_EQ(bench::bench_threads(), resolved);
  unsetenv("FBM_BENCH_THREADS");
}

#endif  // FBM_HAVE_BENCH_COMMON

}  // namespace
}  // namespace fbm
