#include "predict/predictor.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "stats/autocorrelation.hpp"
#include "stats/rng.hpp"

namespace fbm::predict {
namespace {

// AR(1) sample path around a mean.
std::vector<double> ar1_series(double phi, double mean, std::size_t n,
                               std::uint64_t seed) {
  stats::Rng rng(seed);
  std::vector<double> xs = {mean};
  for (std::size_t i = 1; i < n; ++i) {
    xs.push_back(mean + phi * (xs.back() - mean) + rng.normal());
  }
  return xs;
}

std::vector<double> ar1_acf(double phi, std::size_t lags) {
  std::vector<double> acf(lags + 1);
  for (std::size_t k = 0; k <= lags; ++k) {
    acf[k] = std::pow(phi, static_cast<double>(k));
  }
  return acf;
}

TEST(Predictor, PerfectlyCorrelatedProcessIsPredictable) {
  // rho -> 1: predictor approaches "repeat the last value".
  const std::vector<double> acf = {1.0, 0.999, 0.998, 0.997};
  const MovingAveragePredictor p(acf, 1, 10.0);
  const std::vector<double> history = {10.0, 12.0, 14.0};
  EXPECT_NEAR(p.predict(history), 14.0, 0.05);
}

TEST(Predictor, WhiteNoisePredictsTheMean) {
  const std::vector<double> acf = {1.0, 0.0, 0.0};
  const MovingAveragePredictor p(acf, 2, 5.0);
  const std::vector<double> history = {9.0, 1.0};
  EXPECT_NEAR(p.predict(history), 5.0, 1e-9);
}

TEST(Predictor, HistoryShorterThanOrderThrows) {
  const std::vector<double> acf = {1.0, 0.5, 0.2, 0.1};
  const MovingAveragePredictor p(acf, 3, 0.0);
  const std::vector<double> history = {1.0, 2.0};
  EXPECT_THROW((void)p.predict(history), std::invalid_argument);
}

TEST(Predictor, Ar1TheoreticalErrorMatchesEmpirical) {
  const double phi = 0.8;
  const auto series = ar1_series(phi, 100.0, 50000, 9);
  const MovingAveragePredictor p(ar1_acf(phi, 5), 1, 100.0);
  const auto rep = evaluate_predictor(p, series);
  // AR(1) innovation variance is 1; stationary variance 1/(1-phi^2).
  // Normalised MSE = 1 - phi^2; rmse = sqrt(innovation var) = 1.
  EXPECT_NEAR(rep.rmse, 1.0, 0.05);
  EXPECT_NEAR(p.theoretical_error(), 1.0 - phi * phi, 1e-9);
}

TEST(Predictor, BeatsNaiveMeanOnCorrelatedData) {
  const double phi = 0.9;
  const auto series = ar1_series(phi, 50.0, 20000, 10);
  const MovingAveragePredictor model(ar1_acf(phi, 5), 1, 50.0);
  const auto rep = evaluate_predictor(model, series);
  // Mean-only predictor has rmse = stationary stddev = 1/sqrt(1-phi^2).
  const double naive_rmse = 1.0 / std::sqrt(1.0 - phi * phi);
  EXPECT_LT(rep.rmse, 0.6 * naive_rmse);
}

TEST(Predictor, DataDrivenAcfWorksToo) {
  const auto series = ar1_series(0.7, 20.0, 30000, 11);
  const auto acf = stats::autocorrelation_series(series, 10);
  const MovingAveragePredictor p(acf, 2, 20.0);
  const auto rep = evaluate_predictor(p, series);
  EXPECT_NEAR(rep.rmse, 1.0, 0.1);
  EXPECT_GT(rep.evaluated, 0u);
}

TEST(EvaluatePredictor, ReportFieldsConsistent) {
  const auto series = ar1_series(0.5, 10.0, 500, 12);
  const MovingAveragePredictor p(ar1_acf(0.5, 3), 2, 10.0);
  const auto rep = evaluate_predictor(p, series);
  EXPECT_EQ(rep.predictions.size(), series.size());
  EXPECT_EQ(rep.evaluated, series.size() - p.order());
  EXPECT_GT(rep.relative_error, 0.0);
  EXPECT_NEAR(rep.relative_error * 10.0, rep.rmse, 0.05 * rep.rmse);
}

TEST(EvaluatePredictor, SeriesShorterThanOrder) {
  const MovingAveragePredictor p(ar1_acf(0.5, 3), 3, 0.0);
  const std::vector<double> tiny = {1.0, 2.0};
  const auto rep = evaluate_predictor(p, tiny);
  EXPECT_EQ(rep.evaluated, 0u);
  EXPECT_DOUBLE_EQ(rep.rmse, 0.0);
}

TEST(SelectOrder, Ar1PrefersSmallOrder) {
  const auto series = ar1_series(0.8, 30.0, 5000, 13);
  const auto acf = ar1_acf(0.8, 10);
  const std::size_t m = select_order(acf, series, 8);
  EXPECT_LE(m, 3u);  // AR(1) needs only one lag; noise may admit 2-3
  EXPECT_GE(m, 1u);
}

TEST(SelectOrder, Validation) {
  const auto acf = ar1_acf(0.5, 3);
  const std::vector<double> series = {1.0, 2.0, 3.0};
  EXPECT_THROW((void)select_order(acf, series, 0), std::invalid_argument);
  EXPECT_THROW((void)select_order(acf, series, 10), std::invalid_argument);
}

TEST(Predictor, AccessorsExposeConfiguration) {
  const auto acf = ar1_acf(0.5, 4);
  const MovingAveragePredictor p(acf, 3, 7.5);
  EXPECT_EQ(p.order(), 3u);
  EXPECT_EQ(p.coefficients().size(), 3u);
  EXPECT_DOUBLE_EQ(p.mean(), 7.5);
  EXPECT_GT(p.theoretical_error(), 0.0);
  EXPECT_LE(p.theoretical_error(), 1.0);
}

}  // namespace
}  // namespace fbm::predict
