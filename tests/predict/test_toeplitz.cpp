#include "predict/toeplitz.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

namespace fbm::predict {
namespace {

// AR(1) ACF: rho(k) = phi^k. The optimal one-step predictor is a_0 = phi,
// all other coefficients 0.
std::vector<double> ar1_acf(double phi, std::size_t lags) {
  std::vector<double> acf(lags + 1);
  for (std::size_t k = 0; k <= lags; ++k) {
    acf[k] = std::pow(phi, static_cast<double>(k));
  }
  return acf;
}

TEST(Levinson, Ar1RecoversPhi) {
  const auto acf = ar1_acf(0.6, 8);
  for (std::size_t order : {1u, 2u, 4u, 8u}) {
    const auto r = levinson_durbin(acf, order);
    ASSERT_EQ(r.coefficients.size(), order);
    EXPECT_NEAR(r.coefficients[0], 0.6, 1e-10) << order;
    for (std::size_t i = 1; i < order; ++i) {
      EXPECT_NEAR(r.coefficients[i], 0.0, 1e-10) << order << "," << i;
    }
    EXPECT_NEAR(r.prediction_error, 1.0 - 0.36, 1e-10);
  }
}

TEST(Levinson, WhiteNoiseHasZeroCoefficients) {
  std::vector<double> acf = {1.0, 0.0, 0.0, 0.0};
  const auto r = levinson_durbin(acf, 3);
  for (double c : r.coefficients) EXPECT_NEAR(c, 0.0, 1e-12);
  EXPECT_NEAR(r.prediction_error, 1.0, 1e-12);
}

TEST(Levinson, SatisfiesNormalEquations) {
  // Generic PSD ACF (AR(2)-like); verify sum_l a_l rho(|l-i|) = rho(i+1).
  const std::vector<double> acf = {1.0, 0.7, 0.35, 0.1, -0.02, -0.05};
  const std::size_t order = 4;
  const auto r = levinson_durbin(acf, order);
  for (std::size_t i = 0; i < order; ++i) {
    double lhs = 0.0;
    for (std::size_t l = 0; l < order; ++l) {
      lhs += r.coefficients[l] *
             acf[static_cast<std::size_t>(
                 std::abs(static_cast<long>(l) - static_cast<long>(i)))];
    }
    EXPECT_NEAR(lhs, acf[i + 1], 1e-10) << i;
  }
}

TEST(Levinson, PredictionErrorDecreasesWithOrder) {
  const std::vector<double> acf = {1.0, 0.8, 0.55, 0.35, 0.2, 0.1};
  double prev = 1.0;
  for (std::size_t m = 1; m <= 5; ++m) {
    const auto r = levinson_durbin(acf, m);
    EXPECT_LE(r.prediction_error, prev + 1e-12) << m;
    prev = r.prediction_error;
  }
}

TEST(Levinson, Validation) {
  const std::vector<double> acf = {1.0, 0.5};
  EXPECT_THROW((void)levinson_durbin(acf, 0), std::invalid_argument);
  EXPECT_THROW((void)levinson_durbin(acf, 2), std::invalid_argument);
  const std::vector<double> not_normalised = {2.0, 0.5};
  EXPECT_THROW((void)levinson_durbin(not_normalised, 1),
               std::invalid_argument);
}

TEST(CholeskySolver, AgreesWithLevinson) {
  const std::vector<double> acf = {1.0, 0.7, 0.35, 0.1, -0.02, -0.05};
  for (std::size_t order : {1u, 2u, 3u, 5u}) {
    const auto lev = levinson_durbin(acf, order);
    const auto cho = solve_normal_equations(acf, order);
    ASSERT_EQ(cho.size(), order);
    for (std::size_t i = 0; i < order; ++i) {
      EXPECT_NEAR(cho[i], lev.coefficients[i], 1e-8) << order << "," << i;
    }
  }
}

TEST(CholeskySolver, HandlesNearSingularWithJitter) {
  // rho == 1 everywhere: perfectly correlated, singular Toeplitz matrix.
  const std::vector<double> acf = {1.0, 1.0, 1.0, 1.0};
  const auto x = solve_normal_equations(acf, 3);
  // Any solution with sum(x) = 1 satisfies the (regularised) system.
  double sum = 0.0;
  for (double v : x) sum += v;
  EXPECT_NEAR(sum, 1.0, 1e-3);
}

TEST(CholeskySolver, Validation) {
  const std::vector<double> acf = {1.0, 0.5};
  EXPECT_THROW((void)solve_normal_equations(acf, 0), std::invalid_argument);
  EXPECT_THROW((void)solve_normal_equations(acf, 5), std::invalid_argument);
}

}  // namespace
}  // namespace fbm::predict
