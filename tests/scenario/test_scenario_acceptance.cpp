// Acceptance: the bundled scenarios must be detected by the live monitor
// with precision >= 0.9 AND recall >= 0.9, with detection latency
// reported. This mirrors exactly what `fbm_scenario <spec>` does (same
// defaults), so the scenario-smoke CI job and this test gate the same
// pipeline from two angles.
#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "live/live.hpp"
#include "net/packet_batch.hpp"
#include "scenario/score.hpp"
#include "scenario/source.hpp"
#include "scenario/spec.hpp"
#include "scenario/truth.hpp"

namespace fbm::scenario {
namespace {

std::filesystem::path data_dir() { return FBM_TEST_DATA_DIR; }

/// The fbm_scenario tool's default live configuration for a spec.
live::LiveConfig tool_config(const ScenarioSpec& spec) {
  live::LiveConfig config;
  config.window_s = spec.window_s;
  config.stride_s = spec.stride_s;
  config.band_k_sigma = 3.0;
  config.forecast_max_order = 8;
  config.alert_min_consecutive = 1;
  config.alert_warmup_windows = 8;
  config.analysis.timeout_s(1.0).delta_s(0.1).epsilon(0.01);
  config.validate();
  return config;
}

ScoreReport run_scenario(const std::filesystem::path& spec_path) {
  const ScenarioSpec spec = load_scenario(spec_path);
  const TruthLog truth = derive_truth(spec);

  live::WindowedEstimator estimator(tool_config(spec));
  std::vector<ObservedWindow> observed;
  estimator.set_window_sink(
      [&](live::WindowReport&& r) { observed.push_back(observe(r)); });

  ScenarioTraceSource source(spec);
  net::PacketBatch batch;
  while (source.next_batch(batch, 1024) > 0) estimator.push_batch(batch);
  estimator.finish();
  return score(truth, observed);
}

void expect_accepted(const ScoreReport& r) {
  EXPECT_GE(r.precision, 0.9) << "TP " << r.true_positives << " FP "
                              << r.false_positives;
  EXPECT_GE(r.recall, 0.9) << "detected " << r.detected_events << "/"
                           << r.events.size();
  EXPECT_GT(r.alerts, 0u);
  ASSERT_TRUE(r.mean_detection_latency_s.has_value());
  ASSERT_TRUE(r.max_detection_latency_s.has_value());
  EXPECT_GE(*r.mean_detection_latency_s, 0.0);
  for (const auto& es : r.events) {
    EXPECT_TRUE(es.detected) << live::to_string(es.event.kind) << " at "
                             << es.event.start_s;
  }
}

TEST(ScenarioAcceptance, BundledDdosFlood) {
  const ScoreReport r = run_scenario(data_dir() / "scenario_ddos.scn");
  EXPECT_EQ(r.scenario, "ddos-flood");
  ASSERT_EQ(r.events.size(), 1u);
  expect_accepted(r);
}

TEST(ScenarioAcceptance, BundledFlashCrowd) {
  const ScoreReport r =
      run_scenario(data_dir() / "scenario_flash_crowd.scn");
  EXPECT_EQ(r.scenario, "flash-crowd");
  ASSERT_EQ(r.events.size(), 1u);
  expect_accepted(r);
}

TEST(ScenarioAcceptance, ScoreJsonMatchesSchema) {
  const ScoreReport r = run_scenario(data_dir() / "scenario_ddos.scn");
  const std::string json = to_json(r);
  for (const char* key :
       {"\"fbm_scenario_score\": 1", "\"scenario\": \"ddos-flood\"",
        "\"seed\": ", "\"duration_s\": ", "\"windows\": ", "\"alerts\": ",
        "\"true_positives\": ", "\"false_positives\": ",
        "\"ignored_alerts\": ", "\"false_negatives\": ",
        "\"precision\": ", "\"recall\": ", "\"detected_events\": ",
        "\"mean_detection_latency_s\": ", "\"max_detection_latency_s\": ",
        "\"events\": [", "\"kind\": \"spike\"", "\"link\": ",
        "\"start_s\": ", "\"end_s\": ", "\"detected\": true,",
        "\"matched_alerts\": ", "\"detection_latency_s\": "}) {
    EXPECT_NE(json.find(key), std::string::npos) << key;
  }
}

}  // namespace
}  // namespace fbm::scenario
