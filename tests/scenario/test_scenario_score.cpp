// Alert-acceptance scorer: hand-built truth + windows with known verdicts.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "scenario/score.hpp"

namespace fbm::scenario {
namespace {

using live::AlertKind;

TruthLog simple_truth() {
  TruthLog t;
  t.scenario = "hand";
  t.seed = 7;
  t.duration_s = 300.0;
  t.grace_s = 10.0;
  t.cooldown_s = 60.0;
  t.events.push_back({AlertKind::spike, 100.0, 160.0, ""});
  return t;
}

ObservedWindow window(double start, double end, bool alert,
                      AlertKind kind = AlertKind::none,
                      std::string link = {}) {
  return {std::move(link), start, end, alert, kind};
}

TEST(ScenarioScore, PerfectDetection) {
  std::vector<ObservedWindow> ws;
  for (double t = 0; t < 300; t += 5) {
    const bool in_event = t >= 100 && t < 160;
    ws.push_back(window(t, t + 5, in_event,
                        in_event ? AlertKind::spike : AlertKind::none));
  }
  const ScoreReport r = score(simple_truth(), ws);
  EXPECT_EQ(r.windows, 60u);
  EXPECT_EQ(r.alerts, 12u);
  EXPECT_EQ(r.true_positives, 12u);
  EXPECT_EQ(r.false_positives, 0u);
  EXPECT_EQ(r.false_negatives, 0u);
  EXPECT_DOUBLE_EQ(r.precision, 1.0);
  EXPECT_DOUBLE_EQ(r.recall, 1.0);
  EXPECT_EQ(r.detected_events, 1u);
  ASSERT_TRUE(r.events[0].detection_latency_s.has_value());
  // First alerting window [100, 105): latency = 105 - 100.
  EXPECT_DOUBLE_EQ(*r.events[0].detection_latency_s, 5.0);
  EXPECT_DOUBLE_EQ(*r.mean_detection_latency_s, 5.0);
  EXPECT_DOUBLE_EQ(*r.max_detection_latency_s, 5.0);
}

TEST(ScenarioScore, FalsePositiveOutsideAnyEvent) {
  const ScoreReport r = score(
      simple_truth(), {window(20, 25, true, AlertKind::spike),
                       window(110, 115, true, AlertKind::spike)});
  EXPECT_EQ(r.true_positives, 1u);
  EXPECT_EQ(r.false_positives, 1u);
  EXPECT_DOUBLE_EQ(r.precision, 0.5);
  EXPECT_DOUBLE_EQ(r.recall, 1.0);
}

TEST(ScenarioScore, GraceExtendsTheMatchWindow) {
  // Event ends at 160, grace 10: window [165, 170) still matches...
  ScoreReport r = score(simple_truth(),
                        {window(165, 170, true, AlertKind::spike)});
  EXPECT_EQ(r.true_positives, 1u);
  EXPECT_EQ(r.detected_events, 1u);
  // ...and latency is clamped to the window end minus the event start.
  EXPECT_DOUBLE_EQ(*r.events[0].detection_latency_s, 70.0);

  // Past the grace but inside the cooldown: ignored, not false.
  r = score(simple_truth(), {window(175, 180, true, AlertKind::spike)});
  EXPECT_EQ(r.true_positives, 0u);
  EXPECT_EQ(r.ignored_alerts, 1u);
  EXPECT_EQ(r.false_positives, 0u);
  EXPECT_DOUBLE_EQ(r.precision, 1.0);  // nothing was judged
  EXPECT_DOUBLE_EQ(r.recall, 0.0);

  // Past the cooldown too (event end 160 + 10 + 60 = 230): false positive.
  r = score(simple_truth(), {window(235, 240, true, AlertKind::spike)});
  EXPECT_EQ(r.false_positives, 1u);
}

TEST(ScenarioScore, WrongKindInsideEventIsIgnored) {
  // The forecaster rebound after an event often reads as the opposite
  // kind; inside the extended span that is neither true nor false.
  const ScoreReport r = score(simple_truth(),
                              {window(120, 125, true, AlertKind::drop)});
  EXPECT_EQ(r.true_positives, 0u);
  EXPECT_EQ(r.false_positives, 0u);
  EXPECT_EQ(r.ignored_alerts, 1u);
}

TEST(ScenarioScore, LinksAreScoredIndependently) {
  TruthLog t = simple_truth();
  t.events.clear();
  t.events.push_back({AlertKind::drop, 100.0, 160.0, "west"});
  t.events.push_back({AlertKind::spike, 100.0, 160.0, "east"});

  const ScoreReport r = score(
      t, {window(110, 115, true, AlertKind::drop, "west"),
          window(110, 115, true, AlertKind::spike, "east"),
          // Aggregate alert matches no link-scoped event: false positive.
          window(110, 115, true, AlertKind::spike),
          // Wrong link entirely.
          window(110, 115, true, AlertKind::spike, "north")});
  EXPECT_EQ(r.true_positives, 2u);
  EXPECT_EQ(r.false_positives, 2u);
  EXPECT_EQ(r.detected_events, 2u);
  EXPECT_DOUBLE_EQ(r.recall, 1.0);
  EXPECT_DOUBLE_EQ(r.precision, 0.5);
}

TEST(ScenarioScore, UndetectedEventIsAFalseNegative) {
  const ScoreReport r = score(simple_truth(), {window(0, 5, false)});
  EXPECT_EQ(r.false_negatives, 1u);
  EXPECT_EQ(r.detected_events, 0u);
  EXPECT_DOUBLE_EQ(r.recall, 0.0);
  EXPECT_DOUBLE_EQ(r.precision, 1.0);
  EXPECT_FALSE(r.mean_detection_latency_s.has_value());
  EXPECT_FALSE(r.events[0].detection_latency_s.has_value());
}

TEST(ScenarioScore, EmptyTruthAndQuietStreamScorePerfect) {
  TruthLog t = simple_truth();
  t.events.clear();
  const ScoreReport r = score(t, {window(0, 5, false), window(5, 10, false)});
  EXPECT_DOUBLE_EQ(r.precision, 1.0);
  EXPECT_DOUBLE_EQ(r.recall, 1.0);
  EXPECT_EQ(r.windows, 2u);
  EXPECT_EQ(r.alerts, 0u);
}

TEST(ScenarioScore, LatencyUsesTheFirstMatchingAlert) {
  const ScoreReport r = score(
      simple_truth(), {window(130, 135, true, AlertKind::spike),
                       window(150, 155, true, AlertKind::spike)});
  EXPECT_EQ(r.events[0].matched_alerts, 2u);
  EXPECT_DOUBLE_EQ(*r.events[0].detection_latency_s, 35.0);
  EXPECT_DOUBLE_EQ(*r.max_detection_latency_s, 35.0);
}

TEST(ScenarioScore, JsonCarriesTheSchema) {
  const ScoreReport r = score(simple_truth(),
                              {window(110, 115, true, AlertKind::spike)});
  const std::string json = to_json(r);
  for (const char* key :
       {"\"fbm_scenario_score\": 1", "\"scenario\": \"hand\"",
        "\"seed\": 7", "\"windows\": 1", "\"alerts\": 1",
        "\"true_positives\": 1", "\"false_positives\": 0",
        "\"ignored_alerts\": 0", "\"false_negatives\": 0",
        "\"precision\": 1", "\"recall\": 1", "\"detected_events\": 1",
        "\"mean_detection_latency_s\": ", "\"events\": [",
        "\"kind\": \"spike\"", "\"detected\": true",
        "\"matched_alerts\": 1"}) {
    EXPECT_NE(json.find(key), std::string::npos) << key << "\n" << json;
  }
}

}  // namespace
}  // namespace fbm::scenario
