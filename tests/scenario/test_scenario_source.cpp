// ScenarioTraceSource determinism: same spec + seed must yield the exact
// same packet stream — across next() vs next_batch at every batch size,
// across reset() replay, across independent instances, and through serial
// vs threaded engine consumption. The truth log derives from the spec
// alone, so it is byte-identical by construction; pinned here anyway.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <unordered_set>
#include <vector>

#include "engine/engine.hpp"
#include "net/packet_batch.hpp"
#include "scenario/source.hpp"
#include "scenario/spec.hpp"
#include "scenario/truth.hpp"

namespace fbm::scenario {
namespace {

constexpr std::size_t kBatchSizes[] = {1, 7, 1024};

/// Small but regime-complete: every event kind plus a reroute, ~30 s.
ScenarioSpec test_spec() {
  return parse_scenario_text(
      "scenario determinism\n"
      "seed 2024\n"
      "lambda 60\n"
      "size-mean-bits 20000\n"
      "duration-mean-s 0.3\n"
      "prefix-pool 64\n"
      "segment baseline 8\n"
      "segment ddos 5 lambda-x=10 prefixes=0-7\n"
      "segment flash-crowd 5 lambda-x=3\n"
      "segment diurnal 6 amplitude=0.5 period=3\n"
      "segment reroute 6 prefixes=0-31 to-prefixes=32-63\n");
}

std::vector<net::PacketRecord> drain_scalar(ScenarioTraceSource& source) {
  std::vector<net::PacketRecord> out;
  while (auto p = source.next()) out.push_back(*p);
  return out;
}

TEST(ScenarioSource, ScalarStreamIsWellFormed) {
  ScenarioTraceSource source(test_spec());
  const auto packets = drain_scalar(source);
  ASSERT_FALSE(packets.empty());
  EXPECT_GT(source.flows_started(), 0u);
  EXPECT_GT(source.attack_flows(), 0u);
  EXPECT_LT(source.attack_flows(), source.flows_started());
  double last = 0.0;
  const double horizon = source.spec().total_duration_s();
  for (const auto& p : packets) {
    ASSERT_GE(p.timestamp, last);
    ASSERT_LT(p.timestamp, horizon);
    ASSERT_GT(p.size_bytes, 0u);
    last = p.timestamp;
  }
}

TEST(ScenarioSource, BatchMatchesScalarAtEveryBatchSize) {
  ScenarioTraceSource scalar(test_spec());
  const auto expected = drain_scalar(scalar);
  for (const std::size_t batch_size : kBatchSizes) {
    SCOPED_TRACE("batch " + std::to_string(batch_size));
    ScenarioTraceSource batched(test_spec());
    net::PacketBatch batch;
    std::size_t seen = 0;
    while (batched.next_batch(batch, batch_size) > 0) {
      for (std::size_t i = 0; i < batch.size(); ++i) {
        ASSERT_LT(seen, expected.size());
        ASSERT_EQ(batch.record(i), expected[seen]) << "packet " << seen;
        ++seen;
      }
    }
    EXPECT_EQ(seen, expected.size());
  }
}

TEST(ScenarioSource, ResetReplaysByteIdentically) {
  ScenarioTraceSource source(test_spec());
  const auto first = drain_scalar(source);
  const auto flows = source.flows_started();
  const auto attacks = source.attack_flows();
  ASSERT_TRUE(source.reset());
  const auto second = drain_scalar(source);
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    ASSERT_EQ(first[i], second[i]) << "packet " << i;
  }
  EXPECT_EQ(source.flows_started(), flows);
  EXPECT_EQ(source.attack_flows(), attacks);
}

TEST(ScenarioSource, IndependentInstancesAgree) {
  ScenarioTraceSource a(test_spec());
  ScenarioTraceSource b(test_spec());
  const auto pa = drain_scalar(a);
  const auto pb = drain_scalar(b);
  ASSERT_EQ(pa.size(), pb.size());
  for (std::size_t i = 0; i < pa.size(); ++i) {
    ASSERT_EQ(pa[i], pb[i]) << "packet " << i;
  }
}

TEST(ScenarioSource, SeedChangesTheStream) {
  ScenarioSpec other = test_spec();
  other.seed = 2025;
  ScenarioTraceSource a(test_spec());
  ScenarioTraceSource b(other);
  const auto pa = drain_scalar(a);
  const auto pb = drain_scalar(b);
  const bool differs =
      pa.size() != pb.size() ||
      !std::equal(pa.begin(), pa.end(), pb.begin());
  EXPECT_TRUE(differs);
}

TEST(ScenarioSource, RerouteShiftsDestinationsToTheTargetRange) {
  // Ranks 0-31 map to 10.0.x/10.1.x, 32-63 to 10.2.x/10.3.x (one /24 per
  // rank, 16 per second octet). The reroute segment remaps ranks 0-31
  // onto 32-63 for every flow arriving during it, so new flows land in
  // the upper half. Flows already in flight keep their old destination,
  // and power-shot pacing can delay a flow's first packet well past its
  // arrival — so a handful of lower-half flows legitimately surface
  // after the failure. Assert dominance, not exclusivity.
  ScenarioSpec spec = test_spec();
  const double reroute_start = spec.segment_start_s(4);
  ScenarioTraceSource source(spec);
  std::unordered_set<net::FiveTuple, net::FiveTupleHash> seen;
  std::size_t upper_after = 0;
  std::size_t lower_after = 0;
  std::size_t lower_before = 0;
  while (auto p = source.next()) {
    if (!seen.insert(p->tuple).second) continue;  // not the first packet
    const bool upper = ((p->tuple.dst.value() >> 16) & 0xff) >= 2;
    if (p->timestamp >= reroute_start) {
      (upper ? upper_after : lower_after) += 1;
    } else if (!upper) {
      ++lower_before;  // baseline spreads over the whole pool
    }
  }
  EXPECT_GT(lower_before, 0u);
  EXPECT_GT(upper_after, 0u);
  // >= 95% of flows surfacing after the failure target the new range.
  EXPECT_GE(upper_after, 19 * lower_after)
      << upper_after << " upper vs " << lower_after << " lower";
}

TEST(ScenarioSource, TruthDerivationIsByteStable) {
  const std::string a = write_truth(derive_truth(test_spec()));
  const std::string b = write_truth(derive_truth(test_spec()));
  EXPECT_EQ(a, b);
  EXPECT_NE(a.find("# fbm-scenario-truth v1"), std::string::npos);
  // ddos + flash-crowd inject aggregate spikes at their boundaries.
  EXPECT_NE(a.find("event spike 8 13 link -"), std::string::npos) << a;
  EXPECT_NE(a.find("event spike 13 18 link -"), std::string::npos) << a;
}

TEST(ScenarioSource, SerialAndThreadedEngineConsumersAgree) {
  const auto run = [&](std::size_t threads) {
    engine::EngineConfig config;
    config.mode = engine::EngineMode::live;
    config.live.window_s = 4.0;
    config.live.analysis.timeout_s(1.0).min_flows(0);
    config.threads = threads;
    engine::Engine eng(config);
    std::vector<std::string> lines;
    eng.set_report_sink([&](engine::LinkReport&& r) {
      if (r.window) lines.push_back(live::to_jsonl(*r.window, r.name));
    });
    (void)eng.attach(engine::parse_link_spec("lower=10.0.0.0/15"));
    (void)eng.attach(engine::parse_link_spec("upper=10.2.0.0/15"));
    ScenarioTraceSource source(test_spec());
    net::PacketBatch batch;
    while (source.next_batch(batch, 512) > 0) eng.push_batch(batch);
    eng.finish();
    // Cross-link interleaving is unpinned under a worker pool; per-link
    // order is. Sort for a stable comparison.
    std::sort(lines.begin(), lines.end());
    return lines;
  };
  const auto serial = run(1);
  const auto threaded = run(4);
  ASSERT_FALSE(serial.empty());
  ASSERT_EQ(serial.size(), threaded.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    ASSERT_EQ(serial[i], threaded[i]) << "report " << i;
  }
}

}  // namespace
}  // namespace fbm::scenario
