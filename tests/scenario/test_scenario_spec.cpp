// Scenario spec parser: text round trip, per-kind defaults, validation
// errors (with line numbers), and ground-truth derivation.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "scenario/spec.hpp"
#include "scenario/truth.hpp"

namespace fbm::scenario {
namespace {

constexpr const char* kFullSpec = R"(# exercise every key once
scenario everything
seed 99
lambda 150
size-mean-bits 30000
size-cv 1.1
duration-mean-s 0.4
duration-cv 0.9
shot-b 2
packet-bytes 1200
attack-packet-bytes 80
prefix-pool 32
window 4
stride 2
grace 12
cooldown 45
segment baseline 30
segment diurnal 60 amplitude=0.4 period=20
segment flash-crowd 25 lambda-x=5 size-x=3 prefixes=0-7
segment ddos 20 lambda-x=40 size-x=0.02 duration-x=0.2 prefixes=8-15
segment reroute 15 prefixes=0-15 to-prefixes=16-31 expect=none expect-drop=west expect-spike=east
segment baseline 40 expect=drop
)";

TEST(ScenarioSpec, ParsesEveryKey) {
  const ScenarioSpec spec = parse_scenario_text(kFullSpec);
  EXPECT_EQ(spec.name, "everything");
  EXPECT_EQ(spec.seed, 99u);
  EXPECT_DOUBLE_EQ(spec.lambda, 150.0);
  EXPECT_DOUBLE_EQ(spec.size_mean_bits, 30000.0);
  EXPECT_DOUBLE_EQ(spec.size_cv, 1.1);
  EXPECT_DOUBLE_EQ(spec.duration_mean_s, 0.4);
  EXPECT_DOUBLE_EQ(spec.duration_cv, 0.9);
  EXPECT_DOUBLE_EQ(spec.shot_b, 2.0);
  EXPECT_EQ(spec.packet_bytes, 1200u);
  EXPECT_EQ(spec.attack_packet_bytes, 80u);
  EXPECT_EQ(spec.prefix_pool, 32u);
  EXPECT_DOUBLE_EQ(spec.window_s, 4.0);
  EXPECT_DOUBLE_EQ(spec.stride_s, 2.0);
  EXPECT_DOUBLE_EQ(spec.grace_s, 12.0);
  EXPECT_DOUBLE_EQ(spec.cooldown_s, 45.0);

  ASSERT_EQ(spec.segments.size(), 6u);
  EXPECT_EQ(spec.segments[0].kind, SegmentKind::baseline);
  EXPECT_DOUBLE_EQ(spec.segments[0].duration_s, 30.0);

  EXPECT_EQ(spec.segments[1].kind, SegmentKind::diurnal);
  EXPECT_DOUBLE_EQ(spec.segments[1].amplitude, 0.4);
  EXPECT_DOUBLE_EQ(spec.segments[1].period_s, 20.0);

  EXPECT_EQ(spec.segments[2].kind, SegmentKind::flash_crowd);
  EXPECT_DOUBLE_EQ(spec.segments[2].lambda_x, 5.0);
  EXPECT_DOUBLE_EQ(spec.segments[2].size_x, 3.0);
  EXPECT_TRUE(spec.segments[2].prefixes.set);
  EXPECT_EQ(spec.segments[2].prefixes.lo, 0u);
  EXPECT_EQ(spec.segments[2].prefixes.hi, 7u);

  EXPECT_EQ(spec.segments[3].kind, SegmentKind::ddos);
  EXPECT_DOUBLE_EQ(spec.segments[3].duration_x, 0.2);

  const Segment& rr = spec.segments[4];
  EXPECT_EQ(rr.kind, SegmentKind::reroute);
  EXPECT_EQ(rr.to_prefixes.lo, 16u);
  EXPECT_EQ(rr.to_prefixes.hi, 31u);
  EXPECT_EQ(rr.expect, Expectation::none);
  EXPECT_EQ(rr.expect_drop_link, "west");
  EXPECT_EQ(rr.expect_spike_link, "east");

  EXPECT_EQ(spec.segments[5].expect, Expectation::drop);

  EXPECT_DOUBLE_EQ(spec.total_duration_s(), 30 + 60 + 25 + 20 + 15 + 40);
  EXPECT_DOUBLE_EQ(spec.segment_start_s(2), 90.0);
}

TEST(ScenarioSpec, EventKindsHaveDetectableDefaults) {
  const ScenarioSpec spec = parse_scenario_text(
      "scenario defaults\n"
      "segment ddos 30\n"
      "segment flash-crowd 30\n"
      "segment diurnal 30\n");
  ASSERT_EQ(spec.segments.size(), 3u);
  // ddos: flood of tiny short flows.
  EXPECT_DOUBLE_EQ(spec.segments[0].lambda_x, 30.0);
  EXPECT_DOUBLE_EQ(spec.segments[0].size_x, 0.05);
  EXPECT_DOUBLE_EQ(spec.segments[0].duration_x, 0.3);
  // flash crowd: more and larger flows.
  EXPECT_DOUBLE_EQ(spec.segments[1].lambda_x, 3.0);
  EXPECT_DOUBLE_EQ(spec.segments[1].size_x, 2.5);
  // diurnal: visible but not alerting.
  EXPECT_DOUBLE_EQ(spec.segments[2].amplitude, 0.3);
}

TEST(ScenarioSpec, RenderRoundTripsEveryField) {
  const ScenarioSpec spec = parse_scenario_text(kFullSpec);
  const std::string rendered = render_scenario(spec);
  const ScenarioSpec again = parse_scenario_text(rendered);
  // Byte-stable after one round trip — the determinism tests rely on it.
  EXPECT_EQ(render_scenario(again), rendered);
  EXPECT_EQ(again.name, spec.name);
  EXPECT_EQ(again.seed, spec.seed);
  ASSERT_EQ(again.segments.size(), spec.segments.size());
  for (std::size_t i = 0; i < spec.segments.size(); ++i) {
    SCOPED_TRACE("segment " + std::to_string(i));
    EXPECT_EQ(again.segments[i].kind, spec.segments[i].kind);
    EXPECT_DOUBLE_EQ(again.segments[i].duration_s,
                     spec.segments[i].duration_s);
    EXPECT_DOUBLE_EQ(again.segments[i].lambda_x, spec.segments[i].lambda_x);
    EXPECT_DOUBLE_EQ(again.segments[i].size_x, spec.segments[i].size_x);
    EXPECT_EQ(again.segments[i].expect, spec.segments[i].expect);
    EXPECT_EQ(again.segments[i].expect_spike_link,
              spec.segments[i].expect_spike_link);
  }
}

TEST(ScenarioSpec, ErrorsNameTheLine) {
  try {
    (void)parse_scenario_text("scenario x\nsegment ddos 30\nbogus-key 1\n");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find(":3"), std::string::npos)
        << e.what();
  }
}

TEST(ScenarioSpec, ValidateRejectsInconsistencies) {
  // No segments at all.
  EXPECT_THROW((void)parse_scenario_text("scenario empty\n"),
               std::invalid_argument);
  // Reroute without a to-prefixes target.
  EXPECT_THROW(
      (void)parse_scenario_text("scenario r\nsegment reroute 10 "
                                "prefixes=0-3\n"),
      std::invalid_argument);
  // Prefix range outside the pool.
  EXPECT_THROW(
      (void)parse_scenario_text("scenario p\nprefix-pool 8\n"
                                "segment ddos 10 prefixes=4-9\n"),
      std::invalid_argument);
  // Diurnal amplitude outside [0, 1].
  EXPECT_THROW(
      (void)parse_scenario_text("scenario d\n"
                                "segment diurnal 10 amplitude=1.5\n"),
      std::invalid_argument);
  // Non-positive duration.
  EXPECT_THROW((void)parse_scenario_text("scenario z\nsegment baseline 0\n"),
               std::invalid_argument);
}

// ---------------------------------------------------------------- truth ---

TEST(ScenarioTruth, DerivesEventsFromExpectations) {
  const ScenarioSpec spec = parse_scenario_text(kFullSpec);
  const TruthLog truth = derive_truth(spec);
  EXPECT_EQ(truth.scenario, "everything");
  EXPECT_EQ(truth.seed, 99u);
  EXPECT_DOUBLE_EQ(truth.duration_s, spec.total_duration_s());
  EXPECT_DOUBLE_EQ(truth.grace_s, 12.0);
  EXPECT_DOUBLE_EQ(truth.cooldown_s, 45.0);
  ASSERT_EQ(truth.segments.size(), 6u);
  EXPECT_DOUBLE_EQ(truth.segments[2].start_s, 90.0);
  EXPECT_DOUBLE_EQ(truth.segments[2].end_s, 115.0);

  // Aggregate events: flash-crowd spike, ddos spike, explicit drop on the
  // last baseline. The reroute segment carries expect=none on the
  // aggregate plus two per-link events.
  ASSERT_EQ(truth.events.size(), 5u);
  EXPECT_EQ(truth.events[0].kind, live::AlertKind::spike);
  EXPECT_EQ(truth.events[0].link, "");
  EXPECT_DOUBLE_EQ(truth.events[0].start_s, 90.0);
  EXPECT_EQ(truth.events[1].kind, live::AlertKind::spike);
  EXPECT_DOUBLE_EQ(truth.events[1].start_s, 115.0);
  EXPECT_EQ(truth.events[2].kind, live::AlertKind::spike);
  EXPECT_EQ(truth.events[2].link, "east");
  EXPECT_EQ(truth.events[3].kind, live::AlertKind::drop);
  EXPECT_EQ(truth.events[3].link, "west");
  EXPECT_EQ(truth.events[4].kind, live::AlertKind::drop);
  EXPECT_EQ(truth.events[4].link, "");
  EXPECT_DOUBLE_EQ(truth.events[4].start_s, 150.0);
}

TEST(ScenarioTruth, TextRoundTripIsByteStable) {
  const TruthLog truth = derive_truth(parse_scenario_text(kFullSpec));
  const std::string text = write_truth(truth);
  const TruthLog again = parse_truth_text(text);
  EXPECT_EQ(write_truth(again), text);
  EXPECT_EQ(again.scenario, truth.scenario);
  EXPECT_EQ(again.seed, truth.seed);
  ASSERT_EQ(again.events.size(), truth.events.size());
  for (std::size_t i = 0; i < truth.events.size(); ++i) {
    SCOPED_TRACE("event " + std::to_string(i));
    EXPECT_EQ(again.events[i].kind, truth.events[i].kind);
    EXPECT_EQ(again.events[i].link, truth.events[i].link);
    EXPECT_DOUBLE_EQ(again.events[i].start_s, truth.events[i].start_s);
    EXPECT_DOUBLE_EQ(again.events[i].end_s, truth.events[i].end_s);
  }
}

TEST(ScenarioTruth, ParseRejectsGarbage) {
  EXPECT_THROW((void)parse_truth_text("not a truth file\n"),
               std::invalid_argument);
  EXPECT_THROW(
      (void)parse_truth_text("# fbm-scenario-truth v1\nevent bogus 0 1 "
                             "link -\n"),
      std::invalid_argument);
}

}  // namespace
}  // namespace fbm::scenario
