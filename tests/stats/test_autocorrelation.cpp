#include "stats/autocorrelation.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "stats/rng.hpp"

namespace fbm::stats {
namespace {

TEST(Autocorrelation, LagZeroIsOne) {
  const std::vector<double> xs = {1.0, 3.0, 2.0, 5.0};
  EXPECT_DOUBLE_EQ(autocorrelation(xs, 0), 1.0);
}

TEST(Autocorrelation, EmptySeries) {
  const std::vector<double> xs;
  EXPECT_DOUBLE_EQ(autocorrelation(xs, 0), 0.0);
  EXPECT_DOUBLE_EQ(autocovariance(xs, 1), 0.0);
}

TEST(Autocorrelation, ConstantSeriesIsZeroBeyondLagZero) {
  const std::vector<double> xs(50, 4.2);
  EXPECT_DOUBLE_EQ(autocorrelation(xs, 1), 0.0);
  EXPECT_DOUBLE_EQ(autocorrelation(xs, 5), 0.0);
}

TEST(Autocorrelation, LagBeyondLengthIsZero) {
  const std::vector<double> xs = {1.0, 2.0};
  EXPECT_DOUBLE_EQ(autocovariance(xs, 2), 0.0);
  EXPECT_DOUBLE_EQ(autocovariance(xs, 10), 0.0);
}

TEST(Autocorrelation, AlternatingSeriesIsNegativeAtLagOne) {
  std::vector<double> xs;
  for (int i = 0; i < 100; ++i) xs.push_back(i % 2 == 0 ? 1.0 : -1.0);
  EXPECT_LT(autocorrelation(xs, 1), -0.9);
  EXPECT_GT(autocorrelation(xs, 2), 0.9);
}

TEST(Autocorrelation, WhiteNoiseDecorrelates) {
  Rng rng(3);
  std::vector<double> xs;
  for (int i = 0; i < 20000; ++i) xs.push_back(rng.normal());
  const double band = white_noise_band(xs.size());
  for (std::size_t lag : {1u, 2u, 5u, 10u, 20u}) {
    EXPECT_LT(std::abs(autocorrelation(xs, lag)), 2.0 * band)
        << "lag " << lag;
  }
}

TEST(Autocorrelation, Ar1ProcessMatchesTheory) {
  // x_t = phi x_{t-1} + e_t has rho(k) = phi^k.
  const double phi = 0.7;
  Rng rng(5);
  std::vector<double> xs = {0.0};
  for (int i = 1; i < 100000; ++i) {
    xs.push_back(phi * xs.back() + rng.normal());
  }
  for (std::size_t lag : {1u, 2u, 3u, 5u}) {
    EXPECT_NEAR(autocorrelation(xs, lag),
                std::pow(phi, static_cast<double>(lag)), 0.03)
        << "lag " << lag;
  }
}

TEST(AutocorrelationSeries, MatchesScalarCalls) {
  Rng rng(9);
  std::vector<double> xs;
  for (int i = 0; i < 500; ++i) xs.push_back(rng.uniform());
  const auto series = autocorrelation_series(xs, 10);
  ASSERT_EQ(series.size(), 11u);
  for (std::size_t lag = 0; lag <= 10; ++lag) {
    EXPECT_NEAR(series[lag], autocorrelation(xs, lag), 1e-12) << lag;
  }
}

TEST(AutocovarianceSeries, LagZeroIsPopulationVariance) {
  const std::vector<double> xs = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  const auto cov = autocovariance_series(xs, 3);
  EXPECT_NEAR(cov[0], 4.0, 1e-12);
}

TEST(AutocovarianceSeries, BiasedEstimatorIsPsd) {
  // The biased estimator guarantees the ACF sequence is positive
  // semi-definite; a necessary condition is |rho(k)| <= 1 for all k.
  Rng rng(10);
  std::vector<double> xs;
  for (int i = 0; i < 300; ++i) xs.push_back(rng.normal() + (i % 7));
  const auto rho = autocorrelation_series(xs, 50);
  for (double r : rho) {
    EXPECT_LE(std::abs(r), 1.0 + 1e-12);
  }
}

TEST(WhiteNoiseBand, Formula) {
  EXPECT_DOUBLE_EQ(white_noise_band(0), 0.0);
  EXPECT_NEAR(white_noise_band(10000), 0.0196, 1e-4);
}

}  // namespace
}  // namespace fbm::stats
