#include "stats/descriptive.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "stats/rng.hpp"

namespace fbm::stats {
namespace {

TEST(RunningStats, EmptyIsSafe) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_TRUE(s.empty());
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.coefficient_of_variation(), 0.0);
  EXPECT_TRUE(std::isnan(s.min()));
  EXPECT_TRUE(std::isnan(s.max()));
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
  EXPECT_DOUBLE_EQ(s.sum(), 5.0);
}

TEST(RunningStats, KnownSmallSample) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.population_variance(), 4.0, 1e-12);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(s.population_stddev(), 2.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, CoefficientOfVariation) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_NEAR(s.coefficient_of_variation(), 2.0 / 5.0, 1e-12);
}

TEST(RunningStats, ConstantSeriesHasZeroVariance) {
  RunningStats s;
  for (int i = 0; i < 100; ++i) s.add(3.25);
  EXPECT_NEAR(s.variance(), 0.0, 1e-18);
  EXPECT_NEAR(s.skewness(), 0.0, 1e-12);
}

TEST(RunningStats, SkewnessSignDetectsAsymmetry) {
  RunningStats right;  // long right tail
  for (int i = 0; i < 99; ++i) right.add(1.0);
  right.add(100.0);
  EXPECT_GT(right.skewness(), 0.0);

  RunningStats left;
  for (int i = 0; i < 99; ++i) left.add(1.0);
  left.add(-100.0);
  EXPECT_LT(left.skewness(), 0.0);
}

TEST(RunningStats, KurtosisOfUniformIsNegative) {
  RunningStats s;
  for (int i = 0; i <= 1000; ++i) s.add(static_cast<double>(i));
  // Continuous uniform has excess kurtosis -1.2.
  EXPECT_NEAR(s.kurtosis(), -1.2, 0.01);
}

TEST(RunningStats, GaussianSampleMomentsMatch) {
  Rng rng(7);
  RunningStats s;
  for (int i = 0; i < 200000; ++i) s.add(3.0 + 2.0 * rng.normal());
  EXPECT_NEAR(s.mean(), 3.0, 0.02);
  EXPECT_NEAR(s.variance(), 4.0, 0.1);
  EXPECT_NEAR(s.skewness(), 0.0, 0.05);
  EXPECT_NEAR(s.kurtosis(), 0.0, 0.1);
}

TEST(RunningStats, MergeMatchesSequential) {
  Rng rng(11);
  RunningStats whole;
  RunningStats a;
  RunningStats b;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(-5.0, 10.0);
    whole.add(x);
    (i < 400 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), whole.count());
  EXPECT_NEAR(a.mean(), whole.mean(), 1e-10);
  EXPECT_NEAR(a.variance(), whole.variance(), 1e-8);
  EXPECT_NEAR(a.skewness(), whole.skewness(), 1e-8);
  EXPECT_NEAR(a.kurtosis(), whole.kurtosis(), 1e-8);
  EXPECT_DOUBLE_EQ(a.min(), whole.min());
  EXPECT_DOUBLE_EQ(a.max(), whole.max());
}

TEST(RunningStats, MergeWithEmptySides) {
  RunningStats a;
  RunningStats empty;
  a.add(1.0);
  a.add(2.0);
  const double mean_before = a.mean();
  a.merge(empty);
  EXPECT_DOUBLE_EQ(a.mean(), mean_before);
  RunningStats c;
  c.merge(a);
  EXPECT_EQ(c.count(), 2u);
  EXPECT_DOUBLE_EQ(c.mean(), mean_before);
}

TEST(RunningStats, ResetClears) {
  RunningStats s;
  s.add(1.0);
  s.reset();
  EXPECT_TRUE(s.empty());
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
}

TEST(RunningStats, NumericallyStableForLargeOffsets) {
  // Classic catastrophic-cancellation case: large mean, small variance.
  RunningStats s;
  const double offset = 1e9;
  for (double x : {offset + 1.0, offset + 2.0, offset + 3.0}) s.add(x);
  EXPECT_NEAR(s.variance(), 1.0, 1e-6);
}

TEST(BatchHelpers, MatchRunningStats) {
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0, 10.0};
  RunningStats s;
  for (double x : xs) s.add(x);
  EXPECT_DOUBLE_EQ(mean(xs), s.mean());
  EXPECT_DOUBLE_EQ(variance(xs), s.variance());
  EXPECT_DOUBLE_EQ(population_variance(xs), s.population_variance());
  EXPECT_DOUBLE_EQ(stddev(xs), s.stddev());
  EXPECT_DOUBLE_EQ(coefficient_of_variation(xs),
                   s.coefficient_of_variation());
}

TEST(BatchHelpers, EmptySpans) {
  const std::vector<double> xs;
  EXPECT_DOUBLE_EQ(mean(xs), 0.0);
  EXPECT_DOUBLE_EQ(variance(xs), 0.0);
}

TEST(BatchHelpers, MeanOfAppliesFunction) {
  const std::vector<double> xs = {1.0, 2.0, 3.0};
  EXPECT_NEAR(mean_of(xs, [](double x) { return x * x; }), 14.0 / 3.0, 1e-12);
}

}  // namespace
}  // namespace fbm::stats
