#include "stats/distributions.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <stdexcept>
#include <vector>

#include "stats/descriptive.hpp"
#include "stats/rng.hpp"

namespace fbm::stats {
namespace {

// ------------------------------------------------------------ property suite

struct DistCase {
  const char* label;
  std::function<DistributionPtr()> make;
  bool finite_variance;
};

class DistributionProperties : public ::testing::TestWithParam<DistCase> {};

TEST_P(DistributionProperties, QuantileInvertsCdf) {
  const auto d = GetParam().make();
  for (double p : {0.01, 0.1, 0.3, 0.5, 0.7, 0.9, 0.99}) {
    const double x = d->quantile(p);
    EXPECT_NEAR(d->cdf(x), p, 1e-6) << d->name() << " p=" << p;
  }
}

TEST_P(DistributionProperties, CdfIsMonotone) {
  const auto d = GetParam().make();
  double prev = -1.0;
  for (double p : {0.05, 0.2, 0.4, 0.6, 0.8, 0.95}) {
    const double x = d->quantile(p);
    const double c = d->cdf(x);
    EXPECT_GE(c, prev - 1e-12) << d->name();
    prev = c;
  }
}

TEST_P(DistributionProperties, PdfIsNonNegative) {
  const auto d = GetParam().make();
  for (double p : {0.05, 0.25, 0.5, 0.75, 0.95}) {
    EXPECT_GE(d->pdf(d->quantile(p)), 0.0) << d->name();
  }
}

TEST_P(DistributionProperties, PdfMatchesCdfDerivative) {
  const auto d = GetParam().make();
  for (double p : {0.2, 0.5, 0.8}) {
    const double x = d->quantile(p);
    const double h = std::max(1e-6, std::abs(x) * 1e-6);
    const double numeric = (d->cdf(x + h) - d->cdf(x - h)) / (2.0 * h);
    const double analytic = d->pdf(x);
    EXPECT_NEAR(numeric, analytic,
                1e-3 * std::max(1.0, std::abs(analytic)) + 1e-9)
        << d->name() << " x=" << x;
  }
}

TEST_P(DistributionProperties, SampleMeanConverges) {
  const auto d = GetParam().make();
  if (!GetParam().finite_variance) GTEST_SKIP() << "infinite variance";
  Rng rng(123);
  RunningStats s;
  for (int i = 0; i < 100000; ++i) s.add(d->sample(rng));
  const double m = d->mean();
  EXPECT_NEAR(s.mean(), m, 0.05 * std::max(1.0, std::abs(m)) +
                               4.0 * std::sqrt(d->variance() / 100000.0))
      << d->name();
}

TEST_P(DistributionProperties, SampleVarianceConverges) {
  const auto d = GetParam().make();
  if (!GetParam().finite_variance) GTEST_SKIP() << "infinite variance";
  Rng rng(321);
  RunningStats s;
  for (int i = 0; i < 200000; ++i) s.add(d->sample(rng));
  const double v = d->variance();
  EXPECT_NEAR(s.variance(), v, 0.15 * std::max(1e-12, v)) << d->name();
}

TEST_P(DistributionProperties, QuantileRejectsBadP) {
  const auto d = GetParam().make();
  EXPECT_THROW((void)d->quantile(-0.1), std::invalid_argument) << d->name();
  EXPECT_THROW((void)d->quantile(1.0), std::invalid_argument) << d->name();
}

INSTANTIATE_TEST_SUITE_P(
    AllDistributions, DistributionProperties,
    ::testing::Values(
        DistCase{"exponential",
                 [] { return std::make_shared<Exponential>(2.0); }, true},
        DistCase{"pareto_heavy",
                 [] { return std::make_shared<Pareto>(1.5, 1.0); }, false},
        DistCase{"pareto_light",
                 [] { return std::make_shared<Pareto>(3.5, 2.0); }, true},
        DistCase{"bounded_pareto",
                 [] { return std::make_shared<BoundedPareto>(1.2, 1.0, 1e4); },
                 true},
        DistCase{"lognormal",
                 [] { return std::make_shared<LogNormal>(1.0, 0.75); }, true},
        DistCase{"weibull",
                 [] { return std::make_shared<Weibull>(1.7, 3.0); }, true},
        DistCase{"uniform", [] { return std::make_shared<Uniform>(2.0, 5.0); },
                 true},
        DistCase{"mixture",
                 [] {
                   return std::make_shared<Mixture>(
                       std::make_shared<Exponential>(1.0),
                       std::make_shared<Exponential>(0.1), 0.7);
                 },
                 true}),
    [](const auto& info) { return info.param.label; });

// --------------------------------------------------------------- single cases

TEST(Exponential, Moments) {
  Exponential d(4.0);
  EXPECT_DOUBLE_EQ(d.mean(), 0.25);
  EXPECT_DOUBLE_EQ(d.variance(), 0.0625);
}

TEST(Exponential, FitRecoversRate) {
  Rng rng(77);
  Exponential truth(3.0);
  std::vector<double> xs;
  for (int i = 0; i < 100000; ++i) xs.push_back(truth.sample(rng));
  const Exponential fitted = Exponential::fit(xs);
  EXPECT_NEAR(fitted.rate(), 3.0, 0.05);
}

TEST(Exponential, RejectsBadRate) {
  EXPECT_THROW(Exponential(0.0), std::invalid_argument);
  EXPECT_THROW(Exponential(-1.0), std::invalid_argument);
}

TEST(Pareto, InfiniteMomentsFlaggedAsInf) {
  Pareto heavy(0.9, 1.0);
  EXPECT_TRUE(std::isinf(heavy.mean()));
  Pareto mid(1.5, 1.0);
  EXPECT_FALSE(std::isinf(mid.mean()));
  EXPECT_TRUE(std::isinf(mid.variance()));
}

TEST(Pareto, MeanFormula) {
  Pareto d(3.0, 2.0);
  EXPECT_DOUBLE_EQ(d.mean(), 3.0);
}

TEST(Pareto, FitRecoversAlpha) {
  Rng rng(78);
  Pareto truth(2.2, 1.0);
  std::vector<double> xs;
  for (int i = 0; i < 100000; ++i) xs.push_back(truth.sample(rng));
  const Pareto fitted = Pareto::fit(xs);
  EXPECT_NEAR(fitted.alpha(), 2.2, 0.05);
  EXPECT_NEAR(fitted.xm(), 1.0, 0.01);
}

TEST(Pareto, SupportStartsAtXm) {
  Pareto d(2.0, 5.0);
  EXPECT_DOUBLE_EQ(d.cdf(4.9), 0.0);
  EXPECT_DOUBLE_EQ(d.pdf(4.9), 0.0);
  EXPECT_GT(d.pdf(5.1), 0.0);
}

TEST(BoundedPareto, SupportIsBounded) {
  BoundedPareto d(1.1, 1.0, 100.0);
  EXPECT_DOUBLE_EQ(d.cdf(0.5), 0.0);
  EXPECT_DOUBLE_EQ(d.cdf(100.0), 1.0);
  EXPECT_GE(d.quantile(0.999), 1.0);
  EXPECT_LE(d.quantile(0.999), 100.0);
}

TEST(BoundedPareto, MeanViaSampling) {
  BoundedPareto d(1.3, 1.0, 1e5);
  Rng rng(79);
  RunningStats s;
  for (int i = 0; i < 300000; ++i) s.add(d.sample(rng));
  EXPECT_NEAR(s.mean(), d.mean(), 0.05 * d.mean());
}

TEST(BoundedPareto, AlphaEqualsMomentOrderLimit) {
  // alpha == 1 hits the log branch of the first raw moment.
  BoundedPareto d(1.0, 1.0, std::exp(1.0));
  // E[X] = xm^a * a * log(cap/xm) / (1 - (xm/cap)^a) with a=1:
  const double expected = 1.0 * std::log(std::exp(1.0)) /
                          (1.0 - 1.0 / std::exp(1.0));
  EXPECT_NEAR(d.mean(), expected, 1e-9);
}

TEST(LogNormal, MomentFormulas) {
  LogNormal d(0.5, 0.8);
  EXPECT_NEAR(d.mean(), std::exp(0.5 + 0.32), 1e-12);
  const double s2 = 0.64;
  EXPECT_NEAR(d.variance(), (std::exp(s2) - 1.0) * std::exp(1.0 + s2), 1e-9);
}

TEST(LogNormal, FromMeanCvRoundTrips) {
  const LogNormal d = LogNormal::from_mean_cv(100.0, 2.0);
  EXPECT_NEAR(d.mean(), 100.0, 1e-9);
  EXPECT_NEAR(std::sqrt(d.variance()) / d.mean(), 2.0, 1e-9);
}

TEST(LogNormal, FitRecoversParameters) {
  Rng rng(80);
  LogNormal truth(1.2, 0.5);
  std::vector<double> xs;
  for (int i = 0; i < 100000; ++i) xs.push_back(truth.sample(rng));
  const LogNormal fitted = LogNormal::fit(xs);
  EXPECT_NEAR(fitted.mu(), 1.2, 0.01);
  EXPECT_NEAR(fitted.sigma(), 0.5, 0.01);
}

TEST(Weibull, ShapeOneIsExponential) {
  Weibull w(1.0, 2.0);
  Exponential e(0.5);
  for (double x : {0.1, 1.0, 3.0}) {
    EXPECT_NEAR(w.cdf(x), e.cdf(x), 1e-12);
  }
}

TEST(Constant, DegenerateBehaviour) {
  Constant c(42.0);
  EXPECT_DOUBLE_EQ(c.mean(), 42.0);
  EXPECT_DOUBLE_EQ(c.variance(), 0.0);
  EXPECT_DOUBLE_EQ(c.cdf(41.9), 0.0);
  EXPECT_DOUBLE_EQ(c.cdf(42.0), 1.0);
  Rng rng(1);
  EXPECT_DOUBLE_EQ(c.sample(rng), 42.0);
}

TEST(Mixture, MeanAndVariance) {
  auto a = std::make_shared<Constant>(0.0);
  auto b = std::make_shared<Constant>(10.0);
  Mixture m(a, b, 0.25);
  EXPECT_DOUBLE_EQ(m.mean(), 7.5);
  // Var = E[X^2] - mean^2 = 0.75*100 - 56.25 = 18.75.
  EXPECT_DOUBLE_EQ(m.variance(), 18.75);
}

TEST(Mixture, QuantileByBisectionInvertsCdf) {
  auto a = std::make_shared<Exponential>(1.0);
  auto b = std::make_shared<Exponential>(0.05);
  Mixture m(a, b, 0.9);
  for (double p : {0.1, 0.5, 0.9, 0.99}) {
    EXPECT_NEAR(m.cdf(m.quantile(p)), p, 1e-8) << p;
  }
}

TEST(Mixture, RejectsNullAndBadP) {
  auto a = std::make_shared<Exponential>(1.0);
  EXPECT_THROW(Mixture(nullptr, a, 0.5), std::invalid_argument);
  EXPECT_THROW(Mixture(a, a, 1.5), std::invalid_argument);
}

TEST(Zipf, ProbabilitiesSumToOne) {
  Zipf z(100, 1.2);
  double acc = 0.0;
  for (std::size_t k = 0; k < 100; ++k) acc += z.probability(k);
  EXPECT_NEAR(acc, 1.0, 1e-12);
}

TEST(Zipf, RankZeroIsMostPopular) {
  Zipf z(50, 1.0);
  EXPECT_GT(z.probability(0), z.probability(1));
  EXPECT_GT(z.probability(1), z.probability(10));
}

TEST(Zipf, ZeroSkewIsUniform) {
  Zipf z(10, 0.0);
  for (std::size_t k = 0; k < 10; ++k) {
    EXPECT_NEAR(z.probability(k), 0.1, 1e-12);
  }
}

TEST(Zipf, SampleFrequenciesMatch) {
  Zipf z(20, 1.0);
  Rng rng(81);
  std::vector<int> counts(20, 0);
  const int n = 200000;
  for (int i = 0; i < n; ++i) ++counts[z.sample(rng)];
  for (std::size_t k : {0u, 1u, 5u, 19u}) {
    EXPECT_NEAR(static_cast<double>(counts[k]) / n, z.probability(k), 0.005)
        << k;
  }
}

TEST(Zipf, Validation) {
  EXPECT_THROW(Zipf(0, 1.0), std::invalid_argument);
  EXPECT_THROW(Zipf(10, -0.5), std::invalid_argument);
}

}  // namespace
}  // namespace fbm::stats
