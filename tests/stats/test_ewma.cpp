#include "stats/ewma.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "stats/rng.hpp"

namespace fbm::stats {
namespace {

TEST(EwmaEstimator, FirstObservationInitialises) {
  EwmaEstimator e(0.1);
  e.update(42.0);
  EXPECT_DOUBLE_EQ(e.value(), 42.0);
  EXPECT_TRUE(e.initialised());
}

TEST(EwmaEstimator, UpdateFormula) {
  EwmaEstimator e(0.25);
  e.update(10.0);
  e.update(20.0);
  // (1-0.25)*10 + 0.25*20 = 12.5
  EXPECT_DOUBLE_EQ(e.value(), 12.5);
}

TEST(EwmaEstimator, ConvergesToConstantInput) {
  EwmaEstimator e(0.2);
  for (int i = 0; i < 200; ++i) e.update(7.0);
  EXPECT_NEAR(e.value(), 7.0, 1e-12);
}

TEST(EwmaEstimator, TracksNoisyMean) {
  Rng rng(5);
  EwmaEstimator e(0.01);
  for (int i = 0; i < 20000; ++i) e.update(3.0 + rng.normal());
  EXPECT_NEAR(e.value(), 3.0, 0.3);
}

TEST(EwmaEstimator, SmallerGainReactsSlower) {
  EwmaEstimator fast(0.5);
  EwmaEstimator slow(0.05);
  fast.update(0.0);
  slow.update(0.0);
  fast.update(10.0);
  slow.update(10.0);
  EXPECT_GT(fast.value(), slow.value());
}

TEST(EwmaEstimator, GainValidation) {
  EXPECT_THROW(EwmaEstimator(0.0), std::invalid_argument);
  EXPECT_THROW(EwmaEstimator(1.5), std::invalid_argument);
  EXPECT_NO_THROW(EwmaEstimator(1.0));
}

TEST(EwmaEstimator, ResetClears) {
  EwmaEstimator e(0.3);
  e.update(5.0);
  e.reset();
  EXPECT_FALSE(e.initialised());
  EXPECT_EQ(e.count(), 0u);
}

TEST(DiscountedRateEstimator, RegularArrivals) {
  DiscountedRateEstimator e(5.0);
  for (int i = 0; i <= 500; ++i) e.observe(i * 0.5);  // 2 events/s
  EXPECT_NEAR(e.rate(), 2.0, 0.15);
}

TEST(DiscountedRateEstimator, PoissonRateRecovered) {
  Rng rng(7);
  DiscountedRateEstimator e(20.0);
  double t = 0.0;
  for (int i = 0; i < 100000; ++i) {
    t += rng.exponential(25.0);
    e.observe(t);
  }
  EXPECT_NEAR(e.rate(), 25.0, 4.0);
}

TEST(DiscountedRateEstimator, SimultaneousEventsDoNotExplode) {
  DiscountedRateEstimator e(10.0);
  for (int i = 0; i < 100; ++i) e.observe(i * 0.1);  // 10 events/s
  // A classifier flush delivers a burst at one timestamp.
  for (int i = 0; i < 50; ++i) e.observe(10.0);
  // The burst adds 50/tau = 5 to the estimate, not orders of magnitude.
  EXPECT_LT(e.rate(), 20.0);
  EXPECT_GT(e.rate(), 10.0);
}

TEST(DiscountedRateEstimator, BackwardsTimestampsClamped) {
  DiscountedRateEstimator e(10.0);
  e.observe(5.0);
  EXPECT_NO_THROW(e.observe(4.0));
  EXPECT_GT(e.rate(), 0.0);
}

TEST(DiscountedRateEstimator, Validation) {
  EXPECT_THROW(DiscountedRateEstimator(0.0), std::invalid_argument);
}

TEST(DiscountedRateEstimator, TracksRateChange) {
  DiscountedRateEstimator e(5.0);
  double t = 0.0;
  for (int i = 0; i < 200; ++i) e.observe(t += 0.1);  // 10/s
  const double before = e.rate();
  for (int i = 0; i < 2000; ++i) e.observe(t += 0.01);  // 100/s
  EXPECT_NEAR(before, 10.0, 1.5);
  EXPECT_NEAR(e.rate(), 100.0, 15.0);
}

TEST(EwmaRateEstimator, RateFromRegularArrivals) {
  EwmaRateEstimator e(0.1);
  for (int i = 0; i <= 100; ++i) e.observe(i * 0.5);  // 2 events/s
  EXPECT_NEAR(e.rate(), 2.0, 1e-9);
}

TEST(EwmaRateEstimator, ZeroBeforeTwoEvents) {
  EwmaRateEstimator e(0.1);
  EXPECT_DOUBLE_EQ(e.rate(), 0.0);
  e.observe(1.0);
  EXPECT_DOUBLE_EQ(e.rate(), 0.0);
  e.observe(2.0);
  EXPECT_GT(e.rate(), 0.0);
}

TEST(EwmaRateEstimator, RejectsTimeGoingBackwards) {
  EwmaRateEstimator e(0.1);
  e.observe(5.0);
  EXPECT_THROW(e.observe(4.0), std::invalid_argument);
}

TEST(EwmaRateEstimator, PoissonRateRecovered) {
  Rng rng(6);
  EwmaRateEstimator e(0.01);
  double t = 0.0;
  for (int i = 0; i < 50000; ++i) {
    t += rng.exponential(25.0);
    e.observe(t);
  }
  EXPECT_NEAR(e.rate(), 25.0, 2.5);
}

}  // namespace
}  // namespace fbm::stats
