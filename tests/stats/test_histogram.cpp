#include "stats/histogram.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

namespace fbm::stats {
namespace {

TEST(Histogram, ConstructorValidation) {
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
  EXPECT_THROW(Histogram(1.0, 1.0, 10), std::invalid_argument);
  EXPECT_THROW(Histogram(2.0, 1.0, 10), std::invalid_argument);
}

TEST(Histogram, BinsAndCenters) {
  Histogram h(0.0, 10.0, 5);
  EXPECT_EQ(h.bins(), 5u);
  EXPECT_DOUBLE_EQ(h.bin_width(), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_center(0), 1.0);
  EXPECT_DOUBLE_EQ(h.bin_center(4), 9.0);
}

TEST(Histogram, CountsFallIntoCorrectBins) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.0);   // bin 0
  h.add(1.99);  // bin 0
  h.add(2.0);   // bin 1
  h.add(9.99);  // bin 4
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(1), 1u);
  EXPECT_EQ(h.count(4), 1u);
  EXPECT_EQ(h.total(), 4u);
}

TEST(Histogram, UnderflowOverflow) {
  Histogram h(0.0, 1.0, 2);
  h.add(-0.5);
  h.add(1.0);  // hi is exclusive
  h.add(2.0);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.total(), 3u);
}

TEST(Histogram, FractionsIncludeOutOfRange) {
  Histogram h(0.0, 1.0, 1);
  h.add(0.5);
  h.add(5.0);
  EXPECT_DOUBLE_EQ(h.fraction(0), 0.5);
  EXPECT_DOUBLE_EQ(h.density(0), 0.5);
}

TEST(Histogram, ModeBin) {
  Histogram h(0.0, 3.0, 3);
  h.add(1.5);
  h.add(1.6);
  h.add(0.5);
  EXPECT_EQ(h.mode_bin(), 1u);
}

TEST(Histogram, AddAllSpan) {
  Histogram h(0.0, 1.0, 2);
  const std::vector<double> xs = {0.1, 0.2, 0.8};
  h.add_all(xs);
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(1), 1u);
}

TEST(Histogram, AsciiRendersOneLinePerBin) {
  Histogram h(0.0, 2.0, 2);
  h.add(0.5);
  const std::string art = h.ascii(10);
  EXPECT_EQ(std::count(art.begin(), art.end(), '\n'), 2);
  EXPECT_NE(art.find('#'), std::string::npos);
}

TEST(Histogram, EmptyHistogramFractionIsZero) {
  Histogram h(0.0, 1.0, 4);
  EXPECT_DOUBLE_EQ(h.fraction(0), 0.0);
  EXPECT_EQ(h.mode_bin(), 0u);
}

}  // namespace
}  // namespace fbm::stats
