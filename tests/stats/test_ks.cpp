#include "stats/ks_test.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "stats/quantile.hpp"
#include "stats/rng.hpp"

namespace fbm::stats {
namespace {

TEST(KsStatistic, PerfectFitIsSmall) {
  // Deterministic exponential quantile sample against its own CDF.
  std::vector<double> xs;
  const int n = 1000;
  for (int i = 0; i < n; ++i) {
    xs.push_back(exponential_quantile((i + 0.5) / n, 1.0));
  }
  const double d =
      ks_statistic(xs, [](double x) { return exponential_cdf(x, 1.0); });
  EXPECT_LT(d, 1.0 / n + 1e-9);
}

TEST(KsStatistic, EmptyThrows) {
  const std::vector<double> xs;
  EXPECT_THROW((void)ks_statistic(xs, [](double) { return 0.5; }),
               std::invalid_argument);
}

TEST(KsStatistic, TotallyWrongDistributionIsLarge) {
  std::vector<double> xs(100, 1000.0);
  const double d =
      ks_statistic(xs, [](double x) { return exponential_cdf(x, 100.0); });
  EXPECT_GT(d, 0.9);
}

TEST(KsPvalue, LargeStatisticGivesSmallP) {
  EXPECT_LT(ks_pvalue(0.5, 100), 1e-6);
}

TEST(KsPvalue, SmallStatisticGivesLargeP) {
  EXPECT_GT(ks_pvalue(0.02, 100), 0.9);
}

TEST(KsPvalue, Monotone) {
  double prev = 1.0;
  for (double d : {0.01, 0.05, 0.1, 0.2, 0.4}) {
    const double p = ks_pvalue(d, 500);
    EXPECT_LE(p, prev + 1e-12);
    prev = p;
  }
}

TEST(KsTestExponential, AcceptsExponentialSample) {
  Rng rng(41);
  std::vector<double> xs;
  for (int i = 0; i < 5000; ++i) xs.push_back(rng.exponential(7.0));
  const KsResult r = ks_test_exponential(xs);
  EXPECT_LT(r.statistic, 0.03);
}

TEST(KsTestExponential, RejectsUniformSample) {
  Rng rng(42);
  std::vector<double> xs;
  for (int i = 0; i < 5000; ++i) xs.push_back(rng.uniform());
  const KsResult r = ks_test_exponential(xs);
  EXPECT_LT(r.pvalue, 0.01);
}

TEST(KsTestExponential, RejectsConstantSample) {
  std::vector<double> xs(100, 2.0);
  const KsResult r = ks_test_exponential(xs);
  EXPECT_GT(r.statistic, 0.5);
}

}  // namespace
}  // namespace fbm::stats
