#include "stats/quantile.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

#include "stats/rng.hpp"

namespace fbm::stats {
namespace {

TEST(EmpiricalQuantile, MedianOfOddSample) {
  const std::vector<double> xs = {3.0, 1.0, 2.0};
  EXPECT_DOUBLE_EQ(empirical_quantile(xs, 0.5), 2.0);
}

TEST(EmpiricalQuantile, Interpolates) {
  const std::vector<double> xs = {0.0, 10.0};
  EXPECT_DOUBLE_EQ(empirical_quantile(xs, 0.25), 2.5);
  EXPECT_DOUBLE_EQ(empirical_quantile(xs, 0.5), 5.0);
}

TEST(EmpiricalQuantile, Extremes) {
  const std::vector<double> xs = {5.0, 1.0, 9.0};
  EXPECT_DOUBLE_EQ(empirical_quantile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(empirical_quantile(xs, 1.0), 9.0);
}

TEST(EmpiricalQuantile, SingleElement) {
  const std::vector<double> xs = {7.0};
  EXPECT_DOUBLE_EQ(empirical_quantile(xs, 0.3), 7.0);
}

TEST(EmpiricalQuantile, Throws) {
  const std::vector<double> empty;
  EXPECT_THROW((void)empirical_quantile(empty, 0.5), std::invalid_argument);
  const std::vector<double> xs = {1.0};
  EXPECT_THROW((void)empirical_quantile(xs, -0.1), std::invalid_argument);
  EXPECT_THROW((void)empirical_quantile(xs, 1.1), std::invalid_argument);
}

TEST(NormalCdf, KnownValues) {
  EXPECT_NEAR(normal_cdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(normal_cdf(1.0), 0.8413447460685429, 1e-10);
  EXPECT_NEAR(normal_cdf(-1.96), 0.024997895148220435, 1e-9);
}

TEST(NormalQuantile, InvertsTheCdf) {
  for (double p : {0.001, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999}) {
    EXPECT_NEAR(normal_cdf(normal_quantile(p)), p, 1e-10) << p;
  }
}

TEST(NormalQuantile, PaperDimensioningValue) {
  // Section VII-A: q(0.05) quantile for 5% congestion ~ 1.645; the paper
  // quotes q for eps=0.05 as 1.64.
  EXPECT_NEAR(normal_quantile(0.95), 1.6448536269514722, 1e-8);
  // Common engineering values.
  EXPECT_NEAR(normal_quantile(0.99), 2.3263478740408408, 1e-8);
  EXPECT_NEAR(normal_quantile(0.5), 0.0, 1e-12);
}

TEST(NormalQuantile, Symmetry) {
  for (double p : {0.01, 0.2, 0.35}) {
    EXPECT_NEAR(normal_quantile(p), -normal_quantile(1.0 - p), 1e-9);
  }
}

TEST(NormalQuantile, Throws) {
  EXPECT_THROW((void)normal_quantile(0.0), std::invalid_argument);
  EXPECT_THROW((void)normal_quantile(1.0), std::invalid_argument);
  EXPECT_THROW((void)normal_quantile(-1.0), std::invalid_argument);
}

TEST(ExponentialQuantile, InvertsTheCdf) {
  const double rate = 2.5;
  for (double p : {0.0, 0.1, 0.5, 0.9, 0.999}) {
    EXPECT_NEAR(exponential_cdf(exponential_quantile(p, rate), rate), p,
                1e-12);
  }
}

TEST(ExponentialQuantile, Median) {
  EXPECT_NEAR(exponential_quantile(0.5, 1.0), std::log(2.0), 1e-12);
}

TEST(ExponentialCdf, NegativeIsZero) {
  EXPECT_DOUBLE_EQ(exponential_cdf(-1.0, 1.0), 0.0);
}

TEST(QQExponential, ExponentialSampleIsStraight) {
  Rng rng(21);
  std::vector<double> xs;
  for (int i = 0; i < 50000; ++i) xs.push_back(rng.exponential(3.0));
  const auto pts = qq_exponential(xs, 100);
  ASSERT_EQ(pts.size(), 100u);
  EXPECT_LT(qq_rms_deviation(pts), 0.05);
}

TEST(QQExponential, UniformSampleIsNotStraight) {
  Rng rng(22);
  std::vector<double> xs;
  for (int i = 0; i < 50000; ++i) xs.push_back(rng.uniform());
  const auto pts = qq_exponential(xs, 100);
  EXPECT_GT(qq_rms_deviation(pts), 0.1);
}

TEST(QQExponential, NormalisedAxesInUnitBox) {
  Rng rng(23);
  std::vector<double> xs;
  for (int i = 0; i < 1000; ++i) xs.push_back(rng.exponential(1.0));
  const auto pts = qq_exponential(xs, 50, true);
  for (const auto& pt : pts) {
    EXPECT_GE(pt.sample, 0.0);
    EXPECT_LE(pt.sample, 1.0 + 1e-12);
    EXPECT_GE(pt.theoretical, 0.0);
    EXPECT_LE(pt.theoretical, 1.0 + 1e-12);
  }
}

TEST(QQExponential, EmptyInputs) {
  const std::vector<double> xs;
  EXPECT_TRUE(qq_exponential(xs, 10).empty());
  const std::vector<double> one = {1.0};
  EXPECT_TRUE(qq_exponential(one, 0).empty());
}

TEST(QQNormal, GaussianSampleIsStraight) {
  Rng rng(24);
  std::vector<double> xs;
  for (int i = 0; i < 50000; ++i) xs.push_back(5.0 + 2.0 * rng.normal());
  const auto pts = qq_normal(xs, 100);
  EXPECT_LT(qq_rms_deviation(pts), 0.05);
}

TEST(QQRmsDeviation, PerfectDiagonalIsZero) {
  std::vector<QQPoint> pts = {{1.0, 1.0}, {2.0, 2.0}};
  EXPECT_DOUBLE_EQ(qq_rms_deviation(pts), 0.0);
}

}  // namespace
}  // namespace fbm::stats
