#include "stats/spectrum.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "stats/descriptive.hpp"
#include "stats/rng.hpp"

namespace fbm::stats {
namespace {

TEST(Fft, RejectsNonPowerOfTwo) {
  std::vector<std::complex<double>> data(6);
  EXPECT_THROW(fft(data), std::invalid_argument);
}

TEST(Fft, DeltaFunctionIsFlat) {
  std::vector<std::complex<double>> data(8, {0.0, 0.0});
  data[0] = {1.0, 0.0};
  fft(data);
  for (const auto& x : data) {
    EXPECT_NEAR(x.real(), 1.0, 1e-12);
    EXPECT_NEAR(x.imag(), 0.0, 1e-12);
  }
}

TEST(Fft, SingleToneLandsInOneBin) {
  const std::size_t n = 64;
  std::vector<std::complex<double>> data(n);
  const int k0 = 5;
  for (std::size_t i = 0; i < n; ++i) {
    data[i] = {std::cos(2.0 * M_PI * k0 * static_cast<double>(i) / n), 0.0};
  }
  fft(data);
  for (std::size_t k = 0; k < n; ++k) {
    const double mag = std::abs(data[k]);
    if (k == static_cast<std::size_t>(k0) ||
        k == n - static_cast<std::size_t>(k0)) {
      EXPECT_NEAR(mag, n / 2.0, 1e-9) << k;
    } else {
      EXPECT_NEAR(mag, 0.0, 1e-9) << k;
    }
  }
}

TEST(Fft, RoundTripInverse) {
  Rng rng(3);
  std::vector<std::complex<double>> data(128);
  for (auto& x : data) x = {rng.normal(), rng.normal()};
  const auto original = data;
  fft(data);
  fft(data, /*inverse=*/true);
  for (std::size_t i = 0; i < data.size(); ++i) {
    EXPECT_NEAR(data[i].real(), original[i].real(), 1e-10);
    EXPECT_NEAR(data[i].imag(), original[i].imag(), 1e-10);
  }
}

TEST(Fft, ParsevalHolds) {
  Rng rng(4);
  std::vector<std::complex<double>> data(256);
  double time_energy = 0.0;
  for (auto& x : data) {
    x = {rng.normal(), 0.0};
    time_energy += std::norm(x);
  }
  fft(data);
  double freq_energy = 0.0;
  for (const auto& x : data) freq_energy += std::norm(x);
  EXPECT_NEAR(freq_energy, time_energy * 256.0, 1e-6 * freq_energy);
}

TEST(FftReal, ZeroPadsToPowerOfTwo) {
  std::vector<double> xs(100, 1.0);
  const auto spec = fft_real(xs);
  EXPECT_EQ(spec.size(), 128u);
  EXPECT_NEAR(spec[0].real(), 100.0, 1e-9);
}

TEST(Welch, Validation) {
  std::vector<double> xs(1000, 1.0);
  PeriodogramOptions opt;
  opt.segment = 100;  // not a power of two
  EXPECT_THROW((void)welch_periodogram(xs, 0.1, opt), std::invalid_argument);
  opt.segment = 256;
  EXPECT_THROW((void)welch_periodogram(std::vector<double>(10, 1.0), 0.1, opt),
               std::invalid_argument);
  opt.segment = 256;
  EXPECT_THROW((void)welch_periodogram(xs, 0.0, opt), std::invalid_argument);
  opt.overlap = 1.5;
  EXPECT_THROW((void)welch_periodogram(xs, 0.1, opt), std::invalid_argument);
}

TEST(Welch, WhiteNoiseSpectrumIsFlatAndNormalised) {
  Rng rng(5);
  const double sigma2 = 4.0;
  std::vector<double> xs;
  for (int i = 0; i < 65536; ++i) xs.push_back(2.0 * rng.normal());
  const double dt = 0.01;
  const auto spec = welch_periodogram(xs, dt);
  // White noise: two-sided density sigma^2 * dt / (2 pi), flat.
  const double expected = sigma2 * dt / (2.0 * M_PI);
  RunningStats level;
  for (const auto& pt : spec) level.add(pt.density);
  EXPECT_NEAR(level.mean(), expected, 0.1 * expected);
  // Integral over (-pi/dt, pi/dt) recovers the variance (x2 for two sides).
  double integral = 0.0;
  for (std::size_t i = 1; i < spec.size(); ++i) {
    integral += 0.5 * (spec[i].density + spec[i - 1].density) *
                (spec[i].omega - spec[i - 1].omega);
  }
  EXPECT_NEAR(2.0 * integral, sigma2, 0.15 * sigma2);
}

TEST(Welch, ToneShowsAsPeak) {
  const double dt = 0.01;
  const double f0 = 7.0;  // Hz
  std::vector<double> xs;
  Rng rng(6);
  for (int i = 0; i < 16384; ++i) {
    xs.push_back(std::sin(2.0 * M_PI * f0 * i * dt) + 0.1 * rng.normal());
  }
  const auto spec = welch_periodogram(xs, dt);
  // Find the peak; it should be near omega = 2 pi f0.
  double peak_omega = 0.0;
  double peak = 0.0;
  for (const auto& pt : spec) {
    if (pt.density > peak) {
      peak = pt.density;
      peak_omega = pt.omega;
    }
  }
  EXPECT_NEAR(peak_omega, 2.0 * M_PI * f0, 2.0);
}

TEST(Welch, Ar1SpectrumShape) {
  // AR(1) has a Lorentzian-ish spectrum: low frequencies dominate.
  Rng rng(7);
  std::vector<double> xs = {0.0};
  for (int i = 1; i < 32768; ++i) xs.push_back(0.9 * xs.back() + rng.normal());
  const auto spec = welch_periodogram(xs, 1.0);
  EXPECT_GT(spec.front().density, 10.0 * spec.back().density);
}

}  // namespace
}  // namespace fbm::stats
