#include "stats/timeseries.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace fbm::stats {
namespace {

TEST(RateBinner, Validation) {
  EXPECT_THROW(RateBinner(1.0, 1.0, 0.1), std::invalid_argument);
  EXPECT_THROW(RateBinner(0.0, 1.0, 0.0), std::invalid_argument);
}

TEST(RateBinner, BytesToBitsPerSecond) {
  RateBinner b(0.0, 1.0, 0.5);
  b.add(0.1, 100.0);  // bin 0
  b.add(0.6, 50.0);   // bin 1
  const RateSeries s = b.series();
  ASSERT_EQ(s.values.size(), 2u);
  EXPECT_DOUBLE_EQ(s.values[0], 100.0 * 8.0 / 0.5);
  EXPECT_DOUBLE_EQ(s.values[1], 50.0 * 8.0 / 0.5);
}

TEST(RateBinner, OutOfRangeDropped) {
  RateBinner b(0.0, 1.0, 0.5);
  b.add(-0.1, 10.0);
  b.add(1.0, 10.0);  // end is exclusive
  b.add(0.2, 10.0);
  EXPECT_EQ(b.dropped(), 2u);
  EXPECT_DOUBLE_EQ(b.total_bytes(), 10.0);
}

TEST(RateBinner, AccumulatesWithinBin) {
  RateBinner b(0.0, 1.0, 1.0);
  b.add(0.1, 10.0);
  b.add(0.9, 30.0);
  EXPECT_DOUBLE_EQ(b.series().values[0], 40.0 * 8.0);
}

TEST(RateBinner, PartialLastBin) {
  // [0, 0.7) with delta 0.3 -> bins [0,.3) [.3,.6) [.6,.7); ceil -> 3 bins.
  RateBinner b(0.0, 0.7, 0.3);
  b.add(0.65, 9.0);
  const RateSeries s = b.series();
  ASSERT_EQ(s.values.size(), 3u);
  EXPECT_GT(s.values[2], 0.0);
}

TEST(RateSeries, TimeAtAndDuration) {
  RateSeries s;
  s.start = 10.0;
  s.delta = 2.0;
  s.values = {1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(s.time_at(0), 10.0);
  EXPECT_DOUBLE_EQ(s.time_at(2), 14.0);
  EXPECT_DOUBLE_EQ(s.duration(), 6.0);
}

TEST(Resample, FactorOneIsIdentity) {
  RateSeries s;
  s.delta = 1.0;
  s.values = {1.0, 2.0, 3.0};
  const RateSeries r = resample(s, 1);
  EXPECT_EQ(r.values, s.values);
}

TEST(Resample, GroupsAreAveraged) {
  RateSeries s;
  s.delta = 0.5;
  s.values = {1.0, 3.0, 5.0, 7.0, 9.0};  // trailing 9.0 dropped
  const RateSeries r = resample(s, 2);
  ASSERT_EQ(r.values.size(), 2u);
  EXPECT_DOUBLE_EQ(r.values[0], 2.0);
  EXPECT_DOUBLE_EQ(r.values[1], 6.0);
  EXPECT_DOUBLE_EQ(r.delta, 1.0);
}

TEST(Resample, ZeroFactorThrows) {
  RateSeries s;
  EXPECT_THROW((void)resample(s, 0), std::invalid_argument);
}

TEST(Resample, AveragingReducesVariance) {
  RateSeries s;
  s.delta = 0.1;
  for (int i = 0; i < 1000; ++i) {
    s.values.push_back(i % 2 == 0 ? 0.0 : 10.0);
  }
  const RateSeries r = resample(s, 2);
  EXPECT_LT(series_variance(r), series_variance(s));
  EXPECT_NEAR(series_mean(r), series_mean(s), 1e-9);
}

TEST(SeriesStats, CovOfConstantIsZero) {
  RateSeries s;
  s.delta = 1.0;
  s.values.assign(10, 5.0);
  EXPECT_DOUBLE_EQ(series_cov(s), 0.0);
}

}  // namespace
}  // namespace fbm::stats
