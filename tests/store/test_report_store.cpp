// Report store: append → scan round-trips every field bit for bit
// (rendered JSONL identity with the live stream), crash-cut semantics — a
// torn final frame is recovered (reader skips it, writer truncates it and
// appends cleanly), mid-file corruption still fails loudly with a
// diagnostic naming the file — plus last-wins dedup, range scans and
// retention trimming.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <random>
#include <stdexcept>
#include <string>
#include <vector>

#include "store/report_store.hpp"

namespace fbm::store {
namespace {

/// Per-test-case temp file, removed up front: leftovers from a previous run
/// would otherwise feed StoreWriter's reopen-and-append path.
std::filesystem::path temp_path(const std::string& tag) {
  const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
  auto path = std::filesystem::path(::testing::TempDir()) /
              ("store_" + std::string(info->name()) + "_" + tag + ".fbms");
  std::filesystem::remove(path);
  return path;
}

std::vector<char> slurp(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<char>(std::istreambuf_iterator<char>(in), {});
}

void spit(const std::filesystem::path& path, const std::vector<char>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/// A deterministic fully-populated report — every field non-default so the
/// round-trip test can miss nothing.
StoredReport make_record(std::uint32_t link, std::size_t index,
                         std::uint64_t seed) {
  std::mt19937_64 rng(seed * 1000 + index);
  std::uniform_real_distribution<double> u(0.1, 100.0);
  StoredReport r;
  r.link_id = link;
  r.link_tagged = link != 0;
  r.link_name = r.link_tagged ? ("link" + std::to_string(link)) : "";
  live::WindowReport& w = r.report;
  w.window_index = index;
  w.start_s = static_cast<double>(index) * 4.0;
  w.width_s = 4.0;
  w.stride_s = 4.0;
  w.packets = seed * 11 + index;
  w.bytes = seed * 1700 + index;
  w.discards = index % 3;
  w.inputs.lambda = u(rng);
  w.inputs.mean_size_bits = u(rng) * 1e4;
  w.inputs.mean_s2_over_d = u(rng) * 1e8;
  w.inputs.flows = 40 + index;
  w.flow_moments.mean_duration_s = u(rng);
  w.flow_moments.stddev_size_bits = u(rng) * 1e3;
  w.flow_moments.stddev_duration_s = u(rng);
  w.flow_moments.mean_rate_bps = u(rng) * 1e5;
  w.measured.mean_bps = u(rng) * 1e6;
  w.measured.variance_bps2 = u(rng) * 1e10;
  w.measured.cov = u(rng) / 100.0;
  w.measured.samples = 20 * (index + 1);
  if (index % 2 == 0) w.shot_b = u(rng);
  w.shot_b_used = w.shot_b.value_or(1.0);
  w.model_cov = u(rng) / 50.0;
  w.plan.mean_bps = w.measured.mean_bps;
  w.plan.stddev_bps = u(rng) * 1e5;
  w.plan.cov = u(rng) / 100.0;
  w.plan.capacity_bps = w.plan.mean_bps * 1.4;
  w.plan.headroom = 1.4;
  w.plan.eps = 0.01;
  w.forecast.available = index > 2;
  w.forecast.predicted_mean_bps = u(rng) * 1e6;
  w.forecast.band_low_bps = w.forecast.predicted_mean_bps * 0.8;
  w.forecast.band_high_bps = w.forecast.predicted_mean_bps * 1.2;
  w.forecast.sigma_bps = u(rng) * 1e4;
  w.forecast.order = 1 + index % 4;
  w.anomaly.alert = index % 5 == 0;
  w.anomaly.kind = w.anomaly.alert
                       ? (index % 2 == 0 ? live::AlertKind::spike
                                         : live::AlertKind::drop)
                       : live::AlertKind::none;
  w.anomaly.deviation_sigma = u(rng);
  w.anomaly.consecutive = index % 4;
  w.anomaly.bin_events = index % 7;
  w.anomaly.bin_peak_sigma = u(rng);
  return r;
}

void expect_same(const StoredReport& a, const StoredReport& b) {
  EXPECT_EQ(a.link_id, b.link_id);
  EXPECT_EQ(a.link_tagged, b.link_tagged);
  EXPECT_EQ(a.link_name, b.link_name);
  // jsonl() renders every schema field through the shared writer; byte
  // equality there plus the binary fields below is full-field identity.
  EXPECT_EQ(a.jsonl(), b.jsonl());
  EXPECT_EQ(a.report.window_index, b.report.window_index);
  EXPECT_EQ(a.report.measured.mean_bps, b.report.measured.mean_bps);
  EXPECT_EQ(a.report.shot_b.has_value(), b.report.shot_b.has_value());
  EXPECT_EQ(a.report.forecast.order, b.report.forecast.order);
  EXPECT_EQ(a.report.anomaly.kind, b.report.anomaly.kind);
}

TEST(ReportStore, AppendScanRoundTripsEveryField) {
  const auto path = temp_path("rt");
  std::vector<StoredReport> written;
  {
    StoreWriter writer(path);
    for (std::size_t i = 0; i < 8; ++i) {
      written.push_back(make_record(0, i, 5));
      writer.append(written.back());
    }
    EXPECT_EQ(writer.appended(), 8u);
    EXPECT_FALSE(writer.recovered_torn_tail());
  }
  StoreReader reader(path);
  EXPECT_FALSE(reader.torn_tail());
  const auto got = reader.scan({});
  ASSERT_EQ(got.size(), written.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    expect_same(written[i], got[i]);
  }
}

TEST(ReportStore, ReopenAppendsAfterValidPrefix) {
  const auto path = temp_path("reopen");
  {
    StoreWriter writer(path);
    writer.append(make_record(0, 0, 1));
  }
  {
    StoreWriter writer(path);
    EXPECT_FALSE(writer.recovered_torn_tail());
    writer.append(make_record(0, 1, 1));
  }
  StoreReader reader(path);
  EXPECT_EQ(reader.records().size(), 2u);
}

TEST(ReportStore, TornTailIsSkippedByReaderAndTruncatedByWriter) {
  const auto path = temp_path("torn");
  {
    StoreWriter writer(path);
    for (std::size_t i = 0; i < 4; ++i) writer.append(make_record(0, i, 2));
  }
  // Simulate a SIGKILL mid-append: cut the last frame short.
  auto bytes = slurp(path);
  const auto full = bytes.size();
  bytes.resize(full - 21);
  spit(path, bytes);

  {  // reader: valid prefix parses, tail flagged
    StoreReader reader(path);
    EXPECT_TRUE(reader.torn_tail());
    EXPECT_EQ(reader.records().size(), 3u);
  }
  {  // writer: truncates the torn tail, appends cleanly
    StoreWriter writer(path);
    EXPECT_TRUE(writer.recovered_torn_tail());
    writer.append(make_record(0, 3, 2));
    writer.append(make_record(0, 4, 2));
  }
  StoreReader reader(path);
  EXPECT_FALSE(reader.torn_tail());
  ASSERT_EQ(reader.records().size(), 5u);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(reader.records()[i].report.window_index, i);
  }
}

TEST(ReportStore, TornAtEveryTailOffsetRecovers) {
  const auto path = temp_path("sweep");
  {
    StoreWriter writer(path);
    for (std::size_t i = 0; i < 3; ++i) writer.append(make_record(0, i, 3));
  }
  const auto bytes = slurp(path);
  // Find the last frame's start by walking the frame chain.
  std::size_t pos = 16;
  std::size_t last_frame = 16;
  while (pos + 16 <= bytes.size()) {
    last_frame = pos;
    std::uint64_t len = 0;
    std::memcpy(&len, bytes.data() + pos + 8, sizeof(len));
    pos += 16 + len + 8;
  }
  const auto probe = temp_path("sweep_probe");
  for (std::size_t cut = last_frame; cut < bytes.size(); ++cut) {
    spit(probe, std::vector<char>(bytes.begin(),
                                  bytes.begin() + static_cast<long>(cut)));
    StoreReader reader(probe);
    EXPECT_EQ(reader.records().size(), 2u) << "cut at " << cut;
    EXPECT_EQ(reader.torn_tail(), cut != last_frame) << "cut at " << cut;
  }
}

TEST(ReportStore, MidFileCorruptionStillThrows) {
  const auto path = temp_path("corrupt");
  {
    StoreWriter writer(path);
    for (std::size_t i = 0; i < 4; ++i) writer.append(make_record(0, i, 4));
  }
  auto bytes = slurp(path);
  // Flip a payload byte of the FIRST record: not the tail, so strictness
  // applies even in tolerant mode.
  bytes[40] ^= 0x20;
  spit(path, bytes);
  try {
    StoreReader reader(path);
    FAIL() << "mid-file corruption must not parse";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("checksum mismatch"),
              std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find(path.filename().string()),
              std::string::npos)
        << "diagnostic must name the file: " << e.what();
  }
  // And the writer must refuse to extend a corrupt store.
  EXPECT_THROW(StoreWriter writer(path), std::runtime_error);
}

TEST(ReportStore, RejectsBadMagicAndFutureVersion) {
  const auto path = temp_path("magic");
  {
    StoreWriter writer(path);
    writer.append(make_record(0, 0, 6));
  }
  auto good = slurp(path);
  auto bad = good;
  bad[1] ^= 0xff;
  spit(path, bad);
  EXPECT_THROW(StoreReader r(path), std::runtime_error);
  bad = good;
  bad[4] = 0x7e;
  spit(path, bad);
  try {
    StoreReader r(path);
    FAIL();
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("unsupported version"),
              std::string::npos)
        << e.what();
  }
}

TEST(ReportStore, DedupKeepsLastPerLinkAndWindow) {
  const auto path = temp_path("dedup");
  {
    StoreWriter writer(path);
    // A killed run wrote windows 0..3, the resumed run re-appends 2..5
    // (same content for the overlap in real use; different bytes here so
    // last-wins is observable).
    for (std::size_t i = 0; i < 4; ++i) writer.append(make_record(1, i, 10));
    for (std::size_t i = 2; i < 6; ++i) writer.append(make_record(1, i, 20));
  }
  StoreReader reader(path);
  ScanOptions raw;
  raw.dedup = false;
  const auto all = reader.scan(raw);
  EXPECT_EQ(all.size(), 8u);
  const auto deduped = reader.scan({});
  ASSERT_EQ(deduped.size(), 6u);
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_EQ(deduped[i].report.window_index, i);
    // Windows 2..5 must be the re-appended (seed 20) versions.
    const auto want = make_record(1, i, i < 2 ? 10 : 20);
    EXPECT_EQ(deduped[i].jsonl(), want.jsonl()) << "window " << i;
  }
}

TEST(ReportStore, RangeScanByLinkAndTime) {
  const auto path = temp_path("range");
  {
    StoreWriter writer(path);
    for (std::size_t i = 0; i < 6; ++i) {
      writer.append(make_record(1, i, 30));
      writer.append(make_record(2, i, 31));
    }
  }
  StoreReader reader(path);
  ScanOptions opts;
  opts.link = "link1";
  opts.from_s = 8.0;   // window 2 starts at 8.0
  opts.to_s = 20.0;    // window 5 starts at 20.0 — excluded (half-open)
  const auto got = reader.scan(opts);
  ASSERT_EQ(got.size(), 3u);
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].link_name, "link1");
    EXPECT_EQ(got[i].report.window_index, i + 2);
  }
}

TEST(ReportStore, ScanOrderIsChronologicalAcrossLinks) {
  const auto path = temp_path("order");
  {
    StoreWriter writer(path);
    // Append link-major; the scan must come back time-major (stream order).
    for (std::uint32_t link = 1; link <= 2; ++link) {
      for (std::size_t i = 0; i < 3; ++i) {
        writer.append(make_record(link, i, 40 + link));
      }
    }
  }
  StoreReader reader(path);
  const auto got = reader.scan({});
  ASSERT_EQ(got.size(), 6u);
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_EQ(got[i].report.window_index, i / 2);
    EXPECT_EQ(got[i].link_id, 1 + i % 2);
  }
}

TEST(ReportStore, TrimBeforeDropsOldRecords) {
  const auto path = temp_path("trim");
  {
    StoreWriter writer(path);
    for (std::size_t i = 0; i < 6; ++i) writer.append(make_record(0, i, 50));
  }
  EXPECT_EQ(trim_store(path, 8.0), 2u);  // windows 0 (0s) and 1 (4s)
  StoreReader reader(path);
  ASSERT_EQ(reader.records().size(), 4u);
  EXPECT_EQ(reader.records().front().report.window_index, 2u);
  // Trimmed store keeps appending normally.
  StoreWriter writer(path);
  writer.append(make_record(0, 6, 50));
  EXPECT_EQ(StoreReader(path).records().size(), 5u);
}

TEST(ReportStore, EmptyStoreIsValid) {
  const auto path = temp_path("empty");
  { StoreWriter writer(path); }
  StoreReader reader(path);
  EXPECT_TRUE(reader.records().empty());
  EXPECT_FALSE(reader.torn_tail());
  EXPECT_TRUE(reader.scan({}).empty());
}

TEST(ReportStore, MissingFileThrows) {
  EXPECT_THROW(StoreReader r(temp_path("nope")), std::runtime_error);
}

}  // namespace
}  // namespace fbm::store
