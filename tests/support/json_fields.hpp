// Minimal "key": value scanner shared by the golden-report regression and
// the perf BenchReport schema test — both compare the JSON our writers emit
// field by field, in document order, without a full JSON parser.
#pragma once

#include <cctype>
#include <string>
#include <vector>

namespace fbm::testsupport {

/// One "key": value pair, in document order. Values are kept as the raw
/// token ("{" and "[" mark nesting, so structure is compared too).
struct Field {
  std::string key;
  std::string value;
};

inline std::vector<Field> parse_fields(const std::string& json) {
  std::vector<Field> out;
  std::size_t pos = 0;
  while ((pos = json.find('"', pos)) != std::string::npos) {
    const std::size_t key_end = json.find('"', pos + 1);
    if (key_end == std::string::npos) break;
    std::string key = json.substr(pos + 1, key_end - pos - 1);
    std::size_t colon = json.find(':', key_end);
    if (colon == std::string::npos) break;
    std::size_t v0 = colon + 1;
    while (v0 < json.size() && std::isspace(static_cast<unsigned char>(
                                   json[v0]))) {
      ++v0;
    }
    std::size_t v1 = v0;
    if (v0 < json.size() && (json[v0] == '{' || json[v0] == '[')) {
      v1 = v0 + 1;
    } else if (v0 < json.size() && json[v0] == '"') {
      v1 = json.find('"', v0 + 1);
      if (v1 == std::string::npos) break;
      ++v1;  // include the closing quote in the token
    } else {
      while (v1 < json.size() && json[v1] != ',' && json[v1] != '\n' &&
             json[v1] != '}' && json[v1] != ']') {
        ++v1;
      }
    }
    out.push_back({std::move(key), json.substr(v0, v1 - v0)});
    pos = v1;
  }
  return out;
}

}  // namespace fbm::testsupport
