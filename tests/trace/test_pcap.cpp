#include "trace/pcap.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "stats/rng.hpp"
#include "trace/synthetic.hpp"

namespace fbm::trace {
namespace {

namespace fs = std::filesystem;

class PcapTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Per-test-case directory: gtest_discover_tests runs each case as its
    // own process under ctest -j, and a shared directory would race with
    // TearDown's remove_all in a sibling case.
    const auto* info =
        ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = fs::temp_directory_path() /
           ("fbm_pcap_test_" + std::string(info->name()));
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }
  [[nodiscard]] fs::path file(const std::string& name) const {
    return dir_ / name;
  }
  fs::path dir_;
};

std::vector<net::PacketRecord> sample_packets(int n) {
  stats::Rng rng(31);
  std::vector<net::PacketRecord> out;
  double t = 0.0;
  for (int i = 0; i < n; ++i) {
    t += rng.exponential(500.0);
    net::PacketRecord r;
    r.timestamp = t;
    r.tuple.src = net::Ipv4Address(
        static_cast<std::uint32_t>(rng.uniform_int(0, ~0u)));
    r.tuple.dst = net::Ipv4Address(
        static_cast<std::uint32_t>(rng.uniform_int(0, ~0u)));
    r.tuple.src_port = static_cast<std::uint16_t>(rng.uniform_int(1, 65535));
    r.tuple.dst_port = static_cast<std::uint16_t>(rng.uniform_int(1, 65535));
    r.tuple.protocol = rng.bernoulli(0.8) ? 6 : 17;
    r.size_bytes = static_cast<std::uint32_t>(rng.uniform_int(40, 1500));
    out.push_back(r);
  }
  return out;
}

TEST_F(PcapTest, RoundTripPreservesModelFields) {
  const auto packets = sample_packets(300);
  export_pcap(file("a.pcap"), packets);
  std::size_t skipped = 0;
  const auto back = import_pcap(file("a.pcap"), 999648000.0, &skipped);
  EXPECT_EQ(skipped, 0u);
  ASSERT_EQ(back.size(), packets.size());
  for (std::size_t i = 0; i < packets.size(); ++i) {
    EXPECT_NEAR(back[i].timestamp, packets[i].timestamp, 2e-6) << i;
    EXPECT_EQ(back[i].tuple, packets[i].tuple) << i;
    EXPECT_EQ(back[i].size_bytes, packets[i].size_bytes) << i;
  }
}

TEST_F(PcapTest, EmptyCapture) {
  export_pcap(file("empty.pcap"), {});
  const auto back = import_pcap(file("empty.pcap"));
  EXPECT_TRUE(back.empty());
  // Global header only: 24 bytes.
  EXPECT_EQ(fs::file_size(file("empty.pcap")), 24u);
}

TEST_F(PcapTest, RejectsBadMagic) {
  std::ofstream out(file("bad.pcap"), std::ios::binary);
  out << "this is definitely not a pcap capture file";
  out.close();
  EXPECT_THROW((void)import_pcap(file("bad.pcap")), std::runtime_error);
}

TEST_F(PcapTest, RejectsMissingFile) {
  EXPECT_THROW((void)import_pcap(file("nope.pcap")), std::runtime_error);
}

TEST_F(PcapTest, TruncatedRecordDetected) {
  export_pcap(file("t.pcap"), sample_packets(5));
  fs::resize_file(file("t.pcap"), fs::file_size(file("t.pcap")) - 10);
  EXPECT_THROW((void)import_pcap(file("t.pcap")), std::runtime_error);
}

TEST_F(PcapTest, SyntheticTraceSurvivesRoundTrip) {
  SyntheticConfig cfg;
  cfg.duration_s = 3.0;
  cfg.flow_rate = 50.0;
  const auto packets = generate_packets(cfg);
  export_pcap(file("synth.pcap"), packets);
  const auto back = import_pcap(file("synth.pcap"));
  ASSERT_EQ(back.size(), packets.size());
  std::uint64_t bytes_in = 0;
  std::uint64_t bytes_out = 0;
  for (const auto& p : packets) bytes_in += p.size_bytes;
  for (const auto& p : back) bytes_out += p.size_bytes;
  EXPECT_EQ(bytes_in, bytes_out);
}

TEST_F(PcapTest, TcpAndUdpHeadersDifferInSize) {
  // TCP captures are 54 bytes, UDP 42: the file size reflects the mix.
  std::vector<net::PacketRecord> tcp_only(10);
  std::vector<net::PacketRecord> udp_only(10);
  double t = 0.0;
  for (int i = 0; i < 10; ++i) {
    tcp_only[i].timestamp = udp_only[i].timestamp = (t += 0.001);
    tcp_only[i].tuple.protocol = 6;
    udp_only[i].tuple.protocol = 17;
    tcp_only[i].size_bytes = udp_only[i].size_bytes = 100;
  }
  export_pcap(file("tcp.pcap"), tcp_only);
  export_pcap(file("udp.pcap"), udp_only);
  EXPECT_EQ(fs::file_size(file("tcp.pcap")) - fs::file_size(file("udp.pcap")),
            10u * 12u);  // TCP header is 12 bytes longer than UDP
}

}  // namespace
}  // namespace fbm::trace
