// 802.1Q decapsulation in PcapReader: single-tagged frames, QinQ
// (0x88a8 / 0x9100 outer TPIDs), non-IPv4 under a VLAN tag, tag-chain
// bounds, and size accounting. Frames are crafted byte by byte so every
// offset is explicit.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <vector>

#include "trace/pcap.hpp"

namespace fbm::trace {
namespace {

class PcapBuilder {
 public:
  PcapBuilder() {
    u32(0xa1b2c3d4);  // magic, microseconds
    u16(2);
    u16(4);           // version
    u32(0);           // thiszone
    u32(0);           // sigfigs
    u32(96);          // snaplen
    u32(1);           // LINKTYPE_ETHERNET
  }

  /// Appends one record wrapping `frame`; orig_len defaults to incl_len.
  void record(const std::vector<std::uint8_t>& frame, double ts = 1.0,
              std::uint32_t orig_len = 0) {
    u32(static_cast<std::uint32_t>(ts));
    u32(static_cast<std::uint32_t>((ts - static_cast<std::uint32_t>(ts)) *
                                   1e6));
    u32(static_cast<std::uint32_t>(frame.size()));
    u32(orig_len != 0 ? orig_len
                      : static_cast<std::uint32_t>(frame.size()));
    bytes_.insert(bytes_.end(), frame.begin(), frame.end());
  }

  std::filesystem::path write(const char* name) const {
    const auto path = std::filesystem::temp_directory_path() / name;
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char*>(bytes_.data()),
              static_cast<std::streamsize>(bytes_.size()));
    return path;
  }

 private:
  void u16(std::uint16_t v) {  // host order, like the reader's memcpy
    bytes_.push_back(static_cast<std::uint8_t>(v & 0xff));
    bytes_.push_back(static_cast<std::uint8_t>(v >> 8));
  }
  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      bytes_.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xff));
    }
  }
  std::vector<std::uint8_t> bytes_;
};

void be16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v & 0xff));
}

/// Ethernet frame with `tags` VLAN tags (first TPID from `outer_tpid`,
/// inner ones 0x8100), an IPv4/UDP header underneath, total_len in the
/// IP header. Returns raw frame bytes.
std::vector<std::uint8_t> vlan_udp_frame(std::size_t tags,
                                         std::uint16_t outer_tpid = 0x8100,
                                         std::uint16_t ethertype = 0x0800) {
  std::vector<std::uint8_t> f(12, 0);  // MACs
  for (std::size_t i = 0; i < tags; ++i) {
    be16(f, i == 0 ? outer_tpid : 0x8100);
    be16(f, 0x0123);  // TCI: priority/VID, ignored by the reader
  }
  be16(f, ethertype);
  // IPv4 header (20 bytes).
  const std::size_t ip_off = f.size();
  f.resize(f.size() + 20, 0);
  f[ip_off] = 0x45;
  f[ip_off + 2] = 0x00;
  f[ip_off + 3] = 28;        // total length: 20 IP + 8 UDP
  f[ip_off + 8] = 64;        // TTL
  f[ip_off + 9] = 17;        // UDP
  f[ip_off + 12] = 10;       // src 10.1.2.3
  f[ip_off + 13] = 1;
  f[ip_off + 14] = 2;
  f[ip_off + 15] = 3;
  f[ip_off + 16] = 10;       // dst 10.9.8.7
  f[ip_off + 17] = 9;
  f[ip_off + 18] = 8;
  f[ip_off + 19] = 7;
  // UDP header (8 bytes): ports 4000 -> 53.
  const std::size_t udp_off = f.size();
  f.resize(f.size() + 8, 0);
  f[udp_off] = 0x0f;
  f[udp_off + 1] = 0xa0;
  f[udp_off + 3] = 53;
  f[udp_off + 5] = 8;
  return f;
}

void expect_decoded(const net::PacketRecord& rec) {
  EXPECT_EQ(rec.tuple.src, net::Ipv4Address(10, 1, 2, 3));
  EXPECT_EQ(rec.tuple.dst, net::Ipv4Address(10, 9, 8, 7));
  EXPECT_EQ(rec.tuple.src_port, 4000);
  EXPECT_EQ(rec.tuple.dst_port, 53);
  EXPECT_EQ(rec.tuple.protocol, 17);
}

TEST(PcapVlan, SingleTagDecapsulates) {
  PcapBuilder b;
  b.record(vlan_udp_frame(1));
  const auto path = b.write("fbm_vlan_single.pcap");
  PcapReader reader(path, 0.0);
  const auto rec = reader.next();
  ASSERT_TRUE(rec.has_value());
  expect_decoded(*rec);
  // orig_len = frame size = 14 eth + 4 tag + 28 ip; size_bytes must
  // exclude the Ethernet header AND the tag.
  EXPECT_EQ(rec->size_bytes, 28u);
  EXPECT_EQ(reader.vlan_decapped(), 1u);
  EXPECT_EQ(reader.skipped(), 0u);
  EXPECT_FALSE(reader.next().has_value());
  std::filesystem::remove(path);
}

TEST(PcapVlan, QinQOuterTpidsDecapsulate) {
  for (const std::uint16_t outer : {std::uint16_t{0x88a8},
                                    std::uint16_t{0x9100},
                                    std::uint16_t{0x8100}}) {
    SCOPED_TRACE(outer);
    PcapBuilder b;
    b.record(vlan_udp_frame(2, outer));
    const auto path = b.write("fbm_vlan_qinq.pcap");
    PcapReader reader(path, 0.0);
    const auto rec = reader.next();
    ASSERT_TRUE(rec.has_value());
    expect_decoded(*rec);
    EXPECT_EQ(rec->size_bytes, 28u);  // both tags excluded
    EXPECT_EQ(reader.vlan_decapped(), 1u);
    std::filesystem::remove(path);
  }
}

TEST(PcapVlan, UntaggedFramesDoNotCountAsDecapped) {
  PcapBuilder b;
  b.record(vlan_udp_frame(0));
  const auto path = b.write("fbm_vlan_none.pcap");
  PcapReader reader(path, 0.0);
  const auto rec = reader.next();
  ASSERT_TRUE(rec.has_value());
  expect_decoded(*rec);
  EXPECT_EQ(rec->size_bytes, 28u);
  EXPECT_EQ(reader.vlan_decapped(), 0u);
  std::filesystem::remove(path);
}

TEST(PcapVlan, NonIpv4UnderVlanIsSkipped) {
  PcapBuilder b;
  b.record(vlan_udp_frame(1, 0x8100, 0x86dd));  // IPv6 under the tag
  b.record(vlan_udp_frame(1));                  // then a good packet
  const auto path = b.write("fbm_vlan_v6.pcap");
  PcapReader reader(path, 0.0);
  const auto rec = reader.next();
  ASSERT_TRUE(rec.has_value());
  expect_decoded(*rec);
  EXPECT_EQ(reader.skipped(), 1u);
  EXPECT_EQ(reader.vlan_decapped(), 1u);
  std::filesystem::remove(path);
}

TEST(PcapVlan, TagChainIsBounded) {
  // Five stacked tags exceed the 4-tag bound: the walk stops and the
  // frame is skipped (the ethertype slot still holds a TPID), instead of
  // walking an attacker-controlled chain.
  PcapBuilder b;
  b.record(vlan_udp_frame(5));
  const auto path = b.write("fbm_vlan_deep.pcap");
  PcapReader reader(path, 0.0);
  EXPECT_FALSE(reader.next().has_value());
  EXPECT_EQ(reader.skipped(), 1u);
  EXPECT_EQ(reader.vlan_decapped(), 0u);
  std::filesystem::remove(path);
}

TEST(PcapVlan, TruncatedTagFallsBackToSkip) {
  // Frame ends in the middle of the VLAN tag: no room for the inner
  // ethertype, so the packet is skipped, not over-read.
  auto frame = vlan_udp_frame(1);
  frame.resize(16);  // 12 MAC + TPID + first TCI byte... cut short
  PcapBuilder b;
  b.record(frame);
  const auto path = b.write("fbm_vlan_trunc.pcap");
  PcapReader reader(path, 0.0);
  EXPECT_FALSE(reader.next().has_value());
  EXPECT_EQ(reader.skipped(), 1u);
  std::filesystem::remove(path);
}

TEST(PcapVlan, RoundTripThroughExportStaysUntagged) {
  // export_pcap writes untagged frames; the reader must keep treating
  // them exactly as before the VLAN support (regression guard).
  net::PacketRecord rec;
  rec.timestamp = 2.5;
  rec.tuple.src = net::Ipv4Address(10, 0, 0, 1);
  rec.tuple.dst = net::Ipv4Address(10, 2, 0, 9);
  rec.tuple.src_port = 1234;
  rec.tuple.dst_port = 80;
  rec.tuple.protocol = 6;
  rec.size_bytes = 1500;
  const auto path =
      std::filesystem::temp_directory_path() / "fbm_vlan_roundtrip.pcap";
  export_pcap(path, {&rec, 1}, 0.0);
  PcapReader reader(path, 0.0);
  const auto got = reader.next();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->tuple, rec.tuple);
  EXPECT_EQ(got->size_bytes, rec.size_bytes);
  EXPECT_EQ(reader.vlan_decapped(), 0u);
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace fbm::trace
