// Property sweeps over the seven Table-I trace presets: the generated
// corpus must satisfy the statistical assumptions the model relies on,
// profile by profile.
#include <gtest/gtest.h>

#include <cmath>

#include "flow/classifier.hpp"
#include "flow/flow_stats.hpp"
#include "stats/descriptive.hpp"
#include "trace/sprint_profiles.hpp"
#include "trace/synthetic.hpp"
#include "trace/trace_stats.hpp"

namespace fbm::trace {
namespace {

class ProfileProperties : public ::testing::TestWithParam<std::size_t> {
 protected:
  [[nodiscard]] static ScaleOptions scale() {
    ScaleOptions s;
    s.time_scale = 1.0 / 60.0;
    s.rate_scale = 1.0 / 10.0;
    s.max_length_s = 60.0;  // keep the test sweep fast
    return s;
  }

  [[nodiscard]] static const std::vector<net::PacketRecord>& packets(
      std::size_t index) {
    static std::array<std::vector<net::PacketRecord>, 7> cache;
    if (cache[index].empty()) {
      cache[index] = generate_packets(make_config(index, scale()));
    }
    return cache[index];
  }
};

TEST_P(ProfileProperties, UtilizationNearScaledTarget) {
  const auto& rows = sprint_table1();
  const auto summary = summarize(packets(GetParam()));
  const double target = rows[GetParam()].utilization_bps * 0.1;
  EXPECT_GT(summary.mean_rate_bps(), 0.5 * target);
  EXPECT_LT(summary.mean_rate_bps(), 1.5 * target);
}

TEST_P(ProfileProperties, ArrivalsAreStationary) {
  // First-half vs second-half flow arrival counts agree within Poisson
  // noise (the paper's 30-minute interval criterion).
  flow::ClassifierOptions opt;
  opt.timeout = 1.0;
  const auto flows =
      flow::classify_all<flow::FiveTupleKey>(packets(GetParam()), opt);
  ASSERT_GT(flows.size(), 100u);
  const double mid = 30.0;
  std::size_t first = 0;
  for (const auto& f : flows) {
    if (f.start < mid) ++first;
  }
  const double expected = static_cast<double>(flows.size()) / 2.0;
  // Allow 6 sigma of Poisson noise plus warm-up slack.
  EXPECT_NEAR(static_cast<double>(first), expected,
              6.0 * std::sqrt(expected) + 0.05 * expected);
}

TEST_P(ProfileProperties, InterarrivalsPassKs) {
  flow::ClassifierOptions opt;
  opt.timeout = 1.0;
  const auto flows =
      flow::classify_all<flow::FiveTupleKey>(packets(GetParam()), opt);
  const auto d = flow::diagnose_population(flows);
  // Generous threshold: the classifier sees completion-reordered flows and
  // boundary effects, but the exponential shape must survive.
  EXPECT_LT(d.interarrival_ks.statistic, 0.08) << "profile " << GetParam();
}

TEST_P(ProfileProperties, SizesAndDurationsUncorrelated) {
  flow::ClassifierOptions opt;
  opt.timeout = 1.0;
  const auto flows =
      flow::classify_all<flow::FiveTupleKey>(packets(GetParam()), opt);
  const auto d = flow::diagnose_population(flows);
  // Bound scales with the sample size: low-utilization profiles have few
  // flows and correspondingly noisy ACF estimates.
  const double bound = std::max(0.1, 4.0 * d.white_noise_band);
  for (std::size_t lag = 1; lag <= 10; ++lag) {
    EXPECT_LT(std::abs(d.size_acf[lag]), bound) << lag;
    EXPECT_LT(std::abs(d.duration_acf[lag]), bound) << lag;
  }
}

TEST_P(ProfileProperties, PacketSizesAreBounded) {
  for (const auto& p : packets(GetParam())) {
    EXPECT_GT(p.size_bytes, 0u);
    EXPECT_LE(p.size_bytes, 1500u);  // MSS / CBR packet caps
  }
}

TEST_P(ProfileProperties, HigherRankProfilesHaveMoreFlows) {
  // Within the corpus, utilization ordering comes from lambda ordering
  // (Corollary 1 argument in Section VI-A). Compare against profile 3
  // (26 Mbps paper scale), the least loaded.
  if (GetParam() == 3) GTEST_SKIP();
  flow::ClassifierOptions opt;
  opt.timeout = 1.0;
  const auto flows =
      flow::classify_all<flow::FiveTupleKey>(packets(GetParam()), opt);
  const auto flows_low =
      flow::classify_all<flow::FiveTupleKey>(packets(3), opt);
  EXPECT_GT(flows.size(), flows_low.size());
}

INSTANTIATE_TEST_SUITE_P(AllProfiles, ProfileProperties,
                         ::testing::Range<std::size_t>(0, 7),
                         [](const auto& info) {
                           return "profile" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace fbm::trace
