#include "trace/synthetic.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <unordered_set>

#include "net/ip.hpp"
#include "trace/sprint_profiles.hpp"
#include "trace/trace_stats.hpp"

namespace fbm::trace {
namespace {

SyntheticConfig small_config() {
  SyntheticConfig cfg;
  cfg.duration_s = 20.0;
  cfg.flow_rate = 50.0;
  cfg.apply_defaults();
  return cfg;
}

TEST(Synthetic, PacketsAreTimestampOrdered) {
  const auto packets = generate_packets(small_config());
  for (std::size_t i = 1; i < packets.size(); ++i) {
    EXPECT_GE(packets[i].timestamp, packets[i - 1].timestamp);
  }
}

TEST(Synthetic, AllTimestampsWithinHorizon) {
  const auto cfg = small_config();
  const auto packets = generate_packets(cfg);
  ASSERT_FALSE(packets.empty());
  EXPECT_GE(packets.front().timestamp, 0.0);
  EXPECT_LT(packets.back().timestamp, cfg.duration_s);
}

TEST(Synthetic, Deterministic) {
  const auto a = generate_packets(small_config());
  const auto b = generate_packets(small_config());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
}

TEST(Synthetic, SeedChangesOutput) {
  auto cfg = small_config();
  const auto a = generate_packets(cfg);
  cfg.seed += 1;
  const auto b = generate_packets(cfg);
  EXPECT_NE(a.size(), b.size());  // different Poisson draws
}

TEST(Synthetic, ReportIsConsistentWithPackets) {
  GenerationReport rep;
  const auto packets = generate_packets(small_config(), &rep);
  EXPECT_EQ(rep.packets, packets.size());
  std::uint64_t bytes = 0;
  for (const auto& p : packets) bytes += p.size_bytes;
  EXPECT_EQ(rep.total_bytes, bytes);
  EXPECT_GT(rep.flows, 0u);
}

TEST(Synthetic, FlowCountNearLambdaTimesDuration) {
  auto cfg = small_config();
  cfg.duration_s = 50.0;
  cfg.flow_rate = 100.0;
  GenerationReport rep;
  (void)generate_packets(cfg, &rep);
  const double expected = cfg.flow_rate * cfg.duration_s;
  EXPECT_NEAR(static_cast<double>(rep.flows), expected,
              5.0 * std::sqrt(expected));
}

TEST(Synthetic, TargetUtilizationApproximatelyMet) {
  SyntheticConfig cfg;
  cfg.duration_s = 60.0;
  cfg.apply_defaults();
  cfg.target_utilization_bps(10e6);
  GenerationReport rep;
  (void)generate_packets(cfg, &rep);
  // Edge effects (flows truncated at the horizon) push the realised rate a
  // little below target; heavy-tailed sizes add noise.
  EXPECT_GT(rep.mean_rate_bps(), 0.5 * 10e6);
  EXPECT_LT(rep.mean_rate_bps(), 1.5 * 10e6);
}

TEST(Synthetic, ExpectedRateMatchesCorollary1Formula) {
  SyntheticConfig cfg;
  cfg.apply_defaults();
  cfg.flow_rate = 123.0;
  EXPECT_NEAR(cfg.expected_rate_bps(),
              123.0 * cfg.size_bytes->mean() * 8.0, 1e-6);
}

TEST(Synthetic, MixOfTcpAndUdp) {
  auto cfg = small_config();
  cfg.tcp_fraction = 0.7;
  cfg.duration_s = 30.0;
  const auto packets = generate_packets(cfg);
  std::size_t tcp = 0;
  std::size_t udp = 0;
  for (const auto& p : packets) {
    if (p.tuple.protocol == 6) ++tcp;
    if (p.tuple.protocol == 17) ++udp;
  }
  EXPECT_GT(tcp, 0u);
  EXPECT_GT(udp, 0u);
  EXPECT_EQ(tcp + udp, packets.size());
}

TEST(Synthetic, PureTcpWhenFractionIsOne) {
  auto cfg = small_config();
  cfg.tcp_fraction = 1.0;
  for (const auto& p : generate_packets(cfg)) {
    EXPECT_EQ(p.tuple.protocol, 6);
  }
}

TEST(Synthetic, PrefixPoolBoundsDistinctPrefixes) {
  auto cfg = small_config();
  cfg.prefix_pool = 16;
  const auto packets = generate_packets(cfg);
  std::unordered_set<std::uint32_t> prefixes;
  for (const auto& p : packets) {
    prefixes.insert(net::Prefix(p.tuple.dst, 24).network().value());
  }
  EXPECT_LE(prefixes.size(), 16u);
  EXPECT_GT(prefixes.size(), 4u);  // Zipf still touches several
}

TEST(Synthetic, ZipfSkewsPrefixPopularity) {
  auto cfg = small_config();
  cfg.prefix_pool = 64;
  cfg.prefix_zipf_s = 1.3;
  cfg.duration_s = 30.0;
  const auto packets = generate_packets(cfg);
  std::unordered_map<std::uint32_t, std::size_t> counts;
  for (const auto& p : packets) {
    ++counts[net::Prefix(p.tuple.dst, 24).network().value()];
  }
  std::size_t max_count = 0;
  for (const auto& [k, v] : counts) max_count = std::max(max_count, v);
  // The most popular prefix should clearly dominate the mean.
  EXPECT_GT(max_count, 3 * packets.size() / counts.size());
}

TEST(Synthetic, Validation) {
  SyntheticConfig cfg;
  cfg.duration_s = 0.0;
  EXPECT_THROW((void)generate_packets(cfg), std::invalid_argument);
  cfg = SyntheticConfig{};
  cfg.flow_rate = -1.0;
  EXPECT_THROW((void)generate_packets(cfg), std::invalid_argument);
  cfg = SyntheticConfig{};
  cfg.prefix_pool = 0;
  EXPECT_THROW((void)generate_packets(cfg), std::invalid_argument);
}

TEST(SprintProfiles, TableHasSevenRowsMatchingPaper) {
  const auto& rows = sprint_table1();
  ASSERT_EQ(rows.size(), 7u);
  EXPECT_EQ(rows[0].date, "Nov 8th, 2001");
  EXPECT_DOUBLE_EQ(rows[0].utilization_bps, 243e6);
  EXPECT_DOUBLE_EQ(rows[3].length_s, 39.5 * 3600.0);
  EXPECT_DOUBLE_EQ(rows[6].utilization_bps, 72e6);
}

TEST(SprintProfiles, ClustersMatchFigure9Legend) {
  const auto& rows = sprint_table1();
  EXPECT_EQ(rows[3].cluster(), 0);  // 26 Mbps < 50
  EXPECT_EQ(rows[6].cluster(), 1);  // 72 Mbps in 50-125
  EXPECT_EQ(rows[0].cluster(), 2);  // 243 Mbps > 125
}

TEST(SprintProfiles, MakeConfigScalesUtilization) {
  ScaleOptions scale;
  scale.rate_scale = 0.1;
  const auto cfg = make_config(0, scale);
  EXPECT_NEAR(cfg.expected_rate_bps(), 24.3e6, 1e-3 * 24.3e6);
  EXPECT_THROW((void)make_config(7, scale), std::invalid_argument);
}

TEST(SprintProfiles, ScaledLengthIsCapped) {
  ScaleOptions scale;
  scale.time_scale = 1.0;  // would be hours
  scale.max_length_s = 42.0;
  const auto cfg = make_config(3, scale);
  EXPECT_DOUBLE_EQ(cfg.duration_s, 42.0);
}

TEST(TraceStats, SummaryOfGeneratedTrace) {
  GenerationReport rep;
  const auto packets = generate_packets(small_config(), &rep);
  const TraceSummary s = summarize(packets);
  EXPECT_EQ(s.packets, rep.packets);
  EXPECT_EQ(s.total_bytes, rep.total_bytes);
  EXPECT_GT(s.mean_rate_mbps(), 0.0);
  EXPECT_GT(s.mean_packet_bytes(), 0.0);
}

TEST(TraceStats, FormatDuration) {
  EXPECT_EQ(format_duration(7.0 * 3600.0), "7h");
  EXPECT_EQ(format_duration(39.5 * 3600.0), "39h 30m");
  EXPECT_EQ(format_duration(90.0), "2m");  // rounds to minutes
  EXPECT_EQ(format_duration(30.0), "30s");
}

}  // namespace
}  // namespace fbm::trace
