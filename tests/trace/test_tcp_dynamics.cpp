#include "trace/tcp_dynamics.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace fbm::trace {
namespace {

TcpParams no_jitter_params() {
  TcpParams p;
  p.jitter = 0.0;
  return p;
}

TEST(PacketizeTcp, ConservesBytes) {
  stats::Rng rng(1);
  for (std::uint64_t size : {1ull, 100ull, 1460ull, 1461ull, 100000ull,
                             5000000ull}) {
    const auto es = packetize_tcp(size, no_jitter_params(), rng);
    EXPECT_EQ(emission_bytes(es), size) << size;
  }
}

TEST(PacketizeTcp, FirstPacketAtOffsetZero) {
  stats::Rng rng(2);
  const auto es = packetize_tcp(50000, no_jitter_params(), rng);
  ASSERT_FALSE(es.empty());
  EXPECT_DOUBLE_EQ(es.front().offset, 0.0);
}

TEST(PacketizeTcp, OffsetsAreSorted) {
  stats::Rng rng(3);
  TcpParams p;
  p.jitter = 0.3;
  const auto es = packetize_tcp(500000, p, rng);
  for (std::size_t i = 1; i < es.size(); ++i) {
    EXPECT_GE(es[i].offset, es[i - 1].offset);
  }
}

TEST(PacketizeTcp, SegmentsRespectMss) {
  stats::Rng rng(4);
  const auto es = packetize_tcp(100000, no_jitter_params(), rng);
  for (const auto& e : es) {
    EXPECT_LE(e.size_bytes, 1460u);
    EXPECT_GT(e.size_bytes, 0u);
  }
}

TEST(PacketizeTcp, TinyFlowIsSinglePacket) {
  stats::Rng rng(5);
  const auto es = packetize_tcp(200, no_jitter_params(), rng);
  EXPECT_EQ(es.size(), 1u);
  EXPECT_EQ(es[0].size_bytes, 200u);
}

TEST(PacketizeTcp, SlowStartDoublesPerRound) {
  stats::Rng rng(6);
  TcpParams p = no_jitter_params();
  p.rtt = 0.1;
  p.initial_window = 1;
  p.peak_rate_bps = 1e9;  // effectively uncapped
  // 15 segments: rounds of 1, 2, 4, 8 -> completes within 4 RTTs.
  const auto es = packetize_tcp(15 * 1460, p, rng);
  ASSERT_EQ(es.size(), 15u);
  EXPECT_LT(emission_duration(es), 4.0 * p.rtt);
  EXPECT_GE(emission_duration(es), 2.9 * p.rtt);
}

TEST(PacketizeTcp, RateIsCappedByPeakRate) {
  stats::Rng rng(7);
  TcpParams p = no_jitter_params();
  p.rtt = 0.1;
  p.peak_rate_bps = 1e6;  // 1 Mbps cap
  const std::uint64_t size = 2000000;  // 16 Mbit
  const auto es = packetize_tcp(size, p, rng);
  const double duration = emission_duration(es);
  // At 1 Mbps, 16 Mbit needs >= 16 s (minus the last-RTT edge).
  EXPECT_GT(duration, 12.0);
}

TEST(PacketizeTcp, LongFlowsLongerThanShortFlows) {
  stats::Rng rng(8);
  const auto small = packetize_tcp(10000, no_jitter_params(), rng);
  const auto large = packetize_tcp(1000000, no_jitter_params(), rng);
  EXPECT_LT(emission_duration(small), emission_duration(large));
}

TEST(PacketizeTcp, SuperlinearRampForShortFlows) {
  // During slow start the per-round throughput doubles: the second half of
  // the flow's packets should occupy much less time than the first half.
  stats::Rng rng(9);
  TcpParams p = no_jitter_params();
  p.initial_window = 1;
  p.ssthresh = 1u << 20;  // pure slow start
  p.peak_rate_bps = 1e9;
  const auto es = packetize_tcp(63 * 1460, p, rng);  // rounds 1,2,4,8,16,32
  ASSERT_EQ(es.size(), 63u);
  const double mid = es[31].offset;
  const double end = emission_duration(es);
  EXPECT_LT(end - mid, mid);  // second half faster than first half
}

TEST(PacketizeTcp, Validation) {
  stats::Rng rng(10);
  TcpParams p = no_jitter_params();
  p.rtt = 0.0;
  EXPECT_THROW((void)packetize_tcp(1000, p, rng), std::invalid_argument);
  p = no_jitter_params();
  p.mss = 0;
  EXPECT_THROW((void)packetize_tcp(1000, p, rng), std::invalid_argument);
  p = no_jitter_params();
  p.peak_rate_bps = 0.0;
  EXPECT_THROW((void)packetize_tcp(1000, p, rng), std::invalid_argument);
}

TEST(PacketizeCbr, ConservesBytes) {
  stats::Rng rng(11);
  for (std::uint64_t size : {1ull, 499ull, 500ull, 501ull, 123456ull}) {
    const auto es = packetize_cbr(size, 1e6, 500, 0.0, rng);
    EXPECT_EQ(emission_bytes(es), size) << size;
  }
}

TEST(PacketizeCbr, RateMatchesTarget) {
  stats::Rng rng(12);
  const double rate = 2e6;
  const std::uint64_t size = 250000;  // 2 Mbit -> ~1 s
  const auto es = packetize_cbr(size, rate, 500, 0.0, rng);
  const double duration = emission_duration(es);
  const double actual_rate =
      static_cast<double>(size - 500) * 8.0 / duration;  // last pkt at end
  EXPECT_NEAR(actual_rate, rate, 0.05 * rate);
}

TEST(PacketizeCbr, UniformSpacingWithoutJitter) {
  stats::Rng rng(13);
  const auto es = packetize_cbr(5000, 1e6, 500, 0.0, rng);
  ASSERT_GE(es.size(), 3u);
  const double gap = es[1].offset - es[0].offset;
  for (std::size_t i = 2; i < es.size(); ++i) {
    EXPECT_NEAR(es[i].offset - es[i - 1].offset, gap, 1e-12);
  }
}

TEST(PacketizeCbr, Validation) {
  stats::Rng rng(14);
  EXPECT_THROW((void)packetize_cbr(1000, 0.0, 500, 0.0, rng),
               std::invalid_argument);
  EXPECT_THROW((void)packetize_cbr(1000, 1e6, 0, 0.0, rng),
               std::invalid_argument);
}

TEST(EmissionHelpers, EmptySchedule) {
  EXPECT_DOUBLE_EQ(emission_duration({}), 0.0);
  EXPECT_EQ(emission_bytes({}), 0u);
}

}  // namespace
}  // namespace fbm::trace
