#include "trace/trace_format.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "stats/rng.hpp"

namespace fbm::trace {
namespace {

namespace fs = std::filesystem;

class TraceFormatTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Per-test-case directory: gtest_discover_tests runs each case as its
    // own process under ctest -j, and a shared directory would race with
    // TearDown's remove_all in a sibling case.
    const auto* info =
        ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = fs::temp_directory_path() /
           ("fbm_trace_test_" + std::string(info->name()));
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  [[nodiscard]] fs::path file(const std::string& name) const {
    return dir_ / name;
  }

  [[nodiscard]] static std::vector<net::PacketRecord> sample_packets(int n) {
    stats::Rng rng(17);
    std::vector<net::PacketRecord> out;
    double t = 0.0;
    for (int i = 0; i < n; ++i) {
      t += rng.exponential(1000.0);
      net::PacketRecord r;
      r.timestamp = t;
      r.tuple.src = net::Ipv4Address(
          static_cast<std::uint32_t>(rng.uniform_int(0, ~0u)));
      r.tuple.dst = net::Ipv4Address(
          static_cast<std::uint32_t>(rng.uniform_int(0, ~0u)));
      r.tuple.src_port = static_cast<std::uint16_t>(rng.uniform_int(0, 65535));
      r.tuple.dst_port = static_cast<std::uint16_t>(rng.uniform_int(0, 65535));
      r.tuple.protocol = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
      r.size_bytes = static_cast<std::uint32_t>(rng.uniform_int(40, 1500));
      out.push_back(r);
    }
    return out;
  }

  fs::path dir_;
};

TEST_F(TraceFormatTest, RoundTripPreservesEveryField) {
  const auto packets = sample_packets(500);
  write_trace(file("a.fbmt"), packets);
  const auto back = read_trace(file("a.fbmt"));
  ASSERT_EQ(back.size(), packets.size());
  for (std::size_t i = 0; i < packets.size(); ++i) {
    EXPECT_EQ(back[i], packets[i]) << i;
  }
}

TEST_F(TraceFormatTest, HeaderCountMatches) {
  const auto packets = sample_packets(123);
  write_trace(file("b.fbmt"), packets);
  TraceReader r(file("b.fbmt"));
  EXPECT_EQ(r.header_count(), 123u);
}

TEST_F(TraceFormatTest, EmptyTrace) {
  write_trace(file("empty.fbmt"), {});
  const auto back = read_trace(file("empty.fbmt"));
  EXPECT_TRUE(back.empty());
  TraceReader r(file("empty.fbmt"));
  EXPECT_EQ(r.header_count(), 0u);
  EXPECT_FALSE(r.next().has_value());
}

TEST_F(TraceFormatTest, StreamingReaderCountsRecords) {
  write_trace(file("c.fbmt"), sample_packets(50));
  TraceReader r(file("c.fbmt"));
  std::size_t n = 0;
  while (r.next()) ++n;
  EXPECT_EQ(n, 50u);
  EXPECT_EQ(r.read_so_far(), 50u);
}

TEST_F(TraceFormatTest, WriterRejectsOutOfOrderTimestamps) {
  TraceWriter w(file("d.fbmt"));
  net::PacketRecord r;
  r.timestamp = 2.0;
  w.append(r);
  r.timestamp = 1.0;
  EXPECT_THROW(w.append(r), std::invalid_argument);
}

TEST_F(TraceFormatTest, WriterRejectsAppendAfterClose) {
  TraceWriter w(file("e.fbmt"));
  w.close();
  net::PacketRecord r;
  EXPECT_THROW(w.append(r), std::runtime_error);
}

TEST_F(TraceFormatTest, ReaderRejectsBadMagic) {
  std::ofstream out(file("bad.fbmt"), std::ios::binary);
  out << "NOT A TRACE FILE AT ALL........";
  out.close();
  EXPECT_THROW(TraceReader{file("bad.fbmt")}, std::runtime_error);
}

TEST_F(TraceFormatTest, ReaderRejectsMissingFile) {
  EXPECT_THROW(TraceReader{file("missing.fbmt")}, std::runtime_error);
}

TEST_F(TraceFormatTest, ReaderDetectsTruncatedRecord) {
  write_trace(file("f.fbmt"), sample_packets(10));
  // Truncate mid-record.
  const auto full = fs::file_size(file("f.fbmt"));
  fs::resize_file(file("f.fbmt"), full - 5);
  TraceReader r(file("f.fbmt"));
  for (int i = 0; i < 9; ++i) ASSERT_TRUE(r.next().has_value());
  EXPECT_THROW((void)r.next(), std::runtime_error);
}

TEST_F(TraceFormatTest, CsvRoundTrip) {
  const auto packets = sample_packets(100);
  export_csv(file("g.csv"), packets);
  const auto back = import_csv(file("g.csv"));
  ASSERT_EQ(back.size(), packets.size());
  for (std::size_t i = 0; i < packets.size(); ++i) {
    EXPECT_NEAR(back[i].timestamp, packets[i].timestamp, 1e-6);
    EXPECT_EQ(back[i].tuple, packets[i].tuple) << i;
    EXPECT_EQ(back[i].size_bytes, packets[i].size_bytes);
  }
}

TEST_F(TraceFormatTest, CsvImportRejectsGarbage) {
  std::ofstream out(file("h.csv"));
  out << "timestamp,src,dst,sport,dport,proto,bytes\n";
  out << "not,a,valid,line\n";
  out.close();
  EXPECT_THROW((void)import_csv(file("h.csv")), std::runtime_error);
}

TEST_F(TraceFormatTest, RecordSizeIsStable) {
  // On-disk format is a contract: header 24 bytes + 28 per record.
  const auto packets = sample_packets(7);
  write_trace(file("i.fbmt"), packets);
  EXPECT_EQ(fs::file_size(file("i.fbmt")), kHeaderSize + 7 * kRecordSize);
}

}  // namespace
}  // namespace fbm::trace
