// Malformed-input hardening for the trace readers: truncated headers,
// zero-length packets, out-of-order timestamps and assorted garbage must
// produce a clean error (or a well-defined skip) — never a crash, hang or
// silently wrong analysis. Exercised through trace::TraceReader /
// import_pcap directly and through the api::open_trace → pipeline path the
// tools use.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "api/api.hpp"
#include "trace/pcap.hpp"
#include "trace/trace_format.hpp"

namespace fbm {
namespace {

class TraceMalformedTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Per-test-case directory: gtest_discover_tests runs each case as its
    // own process under ctest -j, and a shared directory would race with
    // TearDown's remove_all in a sibling case.
    const auto* info =
        ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = std::filesystem::temp_directory_path() /
           ("fbm_malformed_" + std::string(info->name()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  [[nodiscard]] std::filesystem::path path(const std::string& name) const {
    return dir_ / name;
  }

  void write_bytes(const std::filesystem::path& p,
                   const std::vector<char>& bytes) {
    std::ofstream out(p, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  std::filesystem::path dir_;
};

net::PacketRecord packet(double ts, std::uint32_t size_bytes,
                         std::uint16_t sport = 1000) {
  net::PacketRecord p;
  p.timestamp = ts;
  p.tuple.src = net::Ipv4Address(10, 0, 0, 1);
  p.tuple.dst = net::Ipv4Address(10, 0, 0, 2);
  p.tuple.src_port = sport;
  p.tuple.dst_port = 80;
  p.tuple.protocol = 6;
  p.size_bytes = size_bytes;
  return p;
}

// ------------------------------------------------------------ .fbmt files ---

TEST_F(TraceMalformedTest, FbmtTruncatedHeaderThrows) {
  // Shorter than the 24-byte header, starting with valid magic bytes.
  write_bytes(path("trunc.fbmt"), {'F', 'B', 'M', 'T', 1, 0});
  EXPECT_THROW(trace::TraceReader reader(path("trunc.fbmt")),
               std::runtime_error);
  EXPECT_THROW((void)api::open_trace(path("trunc.fbmt")), std::runtime_error);
}

TEST_F(TraceMalformedTest, FbmtEmptyFileThrows) {
  write_bytes(path("empty.fbmt"), {});
  EXPECT_THROW(trace::TraceReader reader(path("empty.fbmt")),
               std::runtime_error);
}

TEST_F(TraceMalformedTest, FbmtTruncatedRecordThrowsMidStream) {
  trace::write_trace(path("cut.fbmt"), std::vector<net::PacketRecord>{
                                           packet(0.0, 500),
                                           packet(1.0, 600),
                                       });
  // Chop the last record in half.
  std::filesystem::resize_file(path("cut.fbmt"),
                               std::filesystem::file_size(path("cut.fbmt")) -
                                   trace::kRecordSize / 2);
  auto source = api::open_trace(path("cut.fbmt"));
  EXPECT_TRUE(source->next().has_value());  // first record still fine
  EXPECT_THROW((void)source->next(), std::runtime_error);
}

TEST_F(TraceMalformedTest, FbmtZeroLengthPacketSurvivesAnalysis) {
  // A zero-byte datagram is odd but representable; the pipeline must carry
  // it (0 bytes contributed) rather than crash or miscount.
  std::vector<net::PacketRecord> recs{packet(0.0, 0), packet(0.5, 0),
                                      packet(1.0, 700, 2000),
                                      packet(1.5, 700, 2000)};
  trace::write_trace(path("zero.fbmt"), recs);
  auto source = api::open_trace(path("zero.fbmt"));
  api::AnalysisConfig config;
  config.interval_s(2.0).timeout_s(10.0);
  api::AnalysisPipeline pipeline(config);
  pipeline.consume(*source);
  EXPECT_EQ(pipeline.summary().packets, 4u);
  EXPECT_EQ(pipeline.summary().total_bytes, 1400u);
  const auto reports = pipeline.take_reports();
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_EQ(reports[0].inputs.flows, 2u);  // the zero-size flow counts too
}

TEST_F(TraceMalformedTest, FbmtOutOfOrderTimestampsErrorNeverCrash) {
  // The writer refuses out-of-order input, so craft the file by hand:
  // valid header, two records with decreasing timestamps.
  std::vector<net::PacketRecord> recs{packet(5.0, 500)};
  trace::write_trace(path("ooo.fbmt"), recs);
  {
    // Append a second record with an earlier timestamp, bypassing the
    // writer's ordering check, and patch the header count to 2.
    std::ofstream out(path("ooo.fbmt"),
                      std::ios::binary | std::ios::in | std::ios::out);
    out.seekp(0, std::ios::end);
    const auto early = packet(1.0, 500);
    const double ts = early.timestamp;
    const std::uint32_t src = early.tuple.src.value();
    const std::uint32_t dst = early.tuple.dst.value();
    const std::uint16_t sport = early.tuple.src_port;
    const std::uint16_t dport = early.tuple.dst_port;
    const std::uint8_t proto = early.tuple.protocol;
    const std::uint8_t pad8 = 0;
    const std::uint16_t pad16 = 0;
    const std::uint32_t size = early.size_bytes;
    out.write(reinterpret_cast<const char*>(&ts), 8);
    out.write(reinterpret_cast<const char*>(&src), 4);
    out.write(reinterpret_cast<const char*>(&dst), 4);
    out.write(reinterpret_cast<const char*>(&sport), 2);
    out.write(reinterpret_cast<const char*>(&dport), 2);
    out.write(reinterpret_cast<const char*>(&proto), 1);
    out.write(reinterpret_cast<const char*>(&pad8), 1);
    out.write(reinterpret_cast<const char*>(&pad16), 2);
    out.write(reinterpret_cast<const char*>(&size), 4);
    const std::uint64_t count = 2;
    out.seekp(8);
    out.write(reinterpret_cast<const char*>(&count), 8);
  }

  // The reader streams what the file says; the pipelines are the ordering
  // gate and must reject, not crash — serial and sharded alike.
  {
    auto source = api::open_trace(path("ooo.fbmt"));
    api::AnalysisPipeline pipeline(api::AnalysisConfig{});
    EXPECT_THROW(pipeline.consume(*source), std::invalid_argument);
  }
  {
    auto source = api::open_trace(path("ooo.fbmt"));
    api::ParallelAnalysisPipeline pipeline(
        api::AnalysisConfig{}.threads(3));
    EXPECT_THROW(pipeline.consume(*source), std::invalid_argument);
  }
}

TEST_F(TraceMalformedTest, CsvGarbageFieldsThrowCleanly) {
  {
    std::ofstream out(path("bad.csv"));
    out << "timestamp,src,dst,sport,dport,proto,bytes\n";
    out << "0.5,10.0.0.1,10.0.0.2,80,81,6,not_a_number\n";
  }
  EXPECT_THROW((void)trace::import_csv(path("bad.csv")), std::runtime_error);
}

// ------------------------------------------------------------- .pcap files ---

TEST_F(TraceMalformedTest, PcapTruncatedGlobalHeaderThrows) {
  write_bytes(path("trunc.pcap"),
              {'\xd4', '\xc3', '\xb2', '\xa1', 2, 0});  // LE magic, then EOF
  EXPECT_THROW((void)trace::import_pcap(path("trunc.pcap")),
               std::runtime_error);
}

TEST_F(TraceMalformedTest, PcapGarbageMagicThrows) {
  write_bytes(path("junk.pcap"),
              std::vector<char>(64, '\x5a'));  // plausible length, junk bytes
  EXPECT_THROW((void)trace::import_pcap(path("junk.pcap")),
               std::runtime_error);
}

TEST_F(TraceMalformedTest, PcapTruncatedPacketRecordThrows) {
  std::vector<net::PacketRecord> recs{packet(0.0, 500), packet(1.0, 600)};
  trace::export_pcap(path("cut.pcap"), recs);
  std::filesystem::resize_file(
      path("cut.pcap"), std::filesystem::file_size(path("cut.pcap")) - 10);
  EXPECT_THROW((void)trace::import_pcap(path("cut.pcap")),
               std::runtime_error);
}

TEST_F(TraceMalformedTest, DiagnosticsNameTheOffendingFile) {
  // Every reader error must carry the path — a fleet operator staring at
  // one line of stderr from a 40-trace batch job needs to know which input
  // died (ISSUE 6 satellite: reader error-path hardening).
  const auto expect_names = [](const auto& fn, const std::string& file) {
    try {
      fn();
      FAIL() << "expected a throw naming " << file;
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find(file), std::string::npos)
          << "diagnostic \"" << e.what() << "\" does not name " << file;
    }
  };

  // .fbmt: truncated mid-record (the header errors already name the file).
  std::vector<net::PacketRecord> recs{packet(0.0, 500), packet(0.5, 700)};
  trace::write_trace(path("cutrec.fbmt"), recs);
  std::filesystem::resize_file(
      path("cutrec.fbmt"),
      std::filesystem::file_size(path("cutrec.fbmt")) - 3);
  expect_names(
      [&] {
        trace::TraceReader reader(path("cutrec.fbmt"));
        while (reader.next()) {
        }
      },
      "cutrec.fbmt");

  // pcap: truncated global header, wrong magic, truncated record.
  write_bytes(path("hdr.pcap"), std::vector<char>(10, 0));
  expect_names([&] { (void)trace::import_pcap(path("hdr.pcap")); },
               "hdr.pcap");
  write_bytes(path("magic.pcap"), std::vector<char>(24, 'x'));
  expect_names([&] { (void)trace::import_pcap(path("magic.pcap")); },
               "magic.pcap");
  trace::export_pcap(path("cutrec.pcap"), recs);
  std::filesystem::resize_file(
      path("cutrec.pcap"),
      std::filesystem::file_size(path("cutrec.pcap")) - 5);
  expect_names([&] { (void)trace::import_pcap(path("cutrec.pcap")); },
               "cutrec.pcap");
}

TEST_F(TraceMalformedTest, PcapZeroLengthPacketRoundTrips) {
  // orig_len = Ethernet header only (zero-byte IP payload reported by the
  // wire): the importer must keep the record with size 0, not crash or
  // underflow.
  std::vector<net::PacketRecord> recs{packet(0.0, 0), packet(0.25, 1200)};
  trace::export_pcap(path("zero.pcap"), recs);
  const auto back = trace::import_pcap(path("zero.pcap"));
  ASSERT_EQ(back.size(), 2u);
  EXPECT_EQ(back[0].size_bytes, 0u);
  EXPECT_EQ(back[1].size_bytes, 1200u);
}

}  // namespace
}  // namespace fbm
