// fbm_aggregate — merge partial reports and fit the model once.
//
// Usage:
//   fbm_aggregate <partial.fbmp> [<partial.fbmp> ...] [--json]
//
// Each input is a PartialReport file written by `fbm_analyze --emit-partial`
// or `fbm_live --emit-partial` (one per shard process, or one per remote
// collector). The tool folds them — flow records concatenate, exact byte
// bins sum, trace totals add — and fits every window exactly once, printing
// the same document the producing tool would have: the fbm_analyze --json
// shape for batch partials (engine shape when the producers ran multi-link),
// one JSONL line per window for live partials. The output is bit-for-bit
// identical to a single-machine run over the union of the producers'
// packets (tests/agg/ pins this).
//
// Corrupt, truncated or incompatible partials are rejected with a one-line
// diagnostic and a nonzero exit — never silently merged. --json is accepted
// for symmetry with the producing tools; JSON is the only output format.
//
// --metrics FILE / --metrics-every S / --metrics-prom FILE emit the obs
// registry (partials read, windows merged, fit stage timings) like every
// other fbm tool.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "agg/agg.hpp"
#include "metrics_cli.hpp"

namespace {

[[noreturn]] void usage() {
  std::fprintf(stderr,
               "usage: fbm_aggregate <partial.fbmp> [<partial.fbmp> ...] "
               "[--json] [--metrics FILE] [--metrics-every S] "
               "[--metrics-prom FILE]\n");
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> paths;
  fbm::tools::MetricsOptions metrics_opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      continue;  // JSON is the only output format
    }
    if (fbm::tools::parse_metrics_flag(argc, argv, i, metrics_opt, usage)) {
      continue;
    }
    if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown flag %s\n", arg.c_str());
      usage();
    }
    paths.push_back(arg);
  }
  if (paths.empty()) usage();

  fbm::obs::MetricsExporter metrics =
      fbm::tools::make_metrics_exporter(metrics_opt);
  fbm::tools::MetricsFinishGuard metrics_guard(metrics);
  try {
    fbm::agg::Merger merger;
    for (const auto& path : paths) {
      merger.add_file(path);
      metrics.tick();
    }
    fbm::agg::MergeResult merged = merger.finish();
    if (merged.kind == fbm::agg::PartialKind::batch) {
      std::printf("%s\n", merged.document.c_str());
    } else {
      for (const auto& line : merged.lines) {
        std::printf("%s\n", line.c_str());
      }
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
