// fbm_analyze — fit the shot-noise model to a packet trace and report it.
//
// Usage:
//   fbm_analyze <trace> [--interval S] [--timeout S] [--delta S]
//               [--prefix24] [--eps P] [--min-flows N] [--threads N]
//               [--link NAME=PREFIX[,PREFIX...] ...]
//               [--emit-partial FILE] [--shard I/K] [--json] [--store FILE]
//
// <trace> may be .fbmt (native, streamed with window-bounded memory), .pcap,
// or .csv. For each analysis interval the tool prints the three model
// parameters, measured vs model mean and CoV, the fitted shot power b, and
// a capacity recommendation; --json emits the same as one JSON document.
// --threads N > 1 analyzes through N flow-key-hashed worker shards; the
// output is bit-for-bit identical to the single-threaded run. --threads 0
// auto-detects the machine's core count.
//
// --link (repeatable) switches to the multi-link engine: the stream is
// demuxed to one analysis session per link (longest-prefix match across
// overlapping claims; NAME=all or NAME=* for a match-all aggregate), each
// proven bit-for-bit equal to analyzing that link's packets alone. The
// table gains a link column; --json groups intervals per link. --threads
// then sizes the engine's session worker pool instead.
//
// --emit-partial FILE switches to distributed-aggregation mode: nothing is
// fitted; every closed interval's raw sufficient statistics (flow records +
// exact byte bins) are serialized to FILE as an agg::PartialReport, for a
// later fbm_aggregate run to merge and fit once. --shard I/K (with
// --emit-partial) makes this process shard I of K: only packets whose flow
// key hashes to shard I are analyzed, so K such runs partition the trace
// and their K partials merge into a byte-identical replica of the
// single-process output. Requires an explicit --interval (the whole-trace
// horizon of one shard would differ from the full trace's).
//
// --store FILE appends every fitted interval to the durable report store
// (the same format fbm_live writes and fbm_query reads), so batch results
// land in the queryable on-disk log alongside live-mode windows. Works in
// both the single-link and --link pipelines; incompatible with
// --emit-partial, which fits nothing.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "agg/agg.hpp"
#include "api/api.hpp"
#include "metrics_cli.hpp"
#include "store/report_store.hpp"

namespace {

struct Options {
  std::string path;
  double interval = 0.0;  // 0 = whole trace
  double timeout = 60.0;
  double delta = fbm::measure::kPaperDelta;
  bool prefix24 = false;
  double eps = 0.01;
  std::size_t min_flows = 10;
  std::size_t threads = 1;
  std::vector<std::string> links;  // empty = single-link pipeline
  std::string emit_partial;        // empty = fit locally
  std::string store;               // empty = no durable persistence
  std::size_t shard_index = 0;
  std::size_t shard_count = 1;
  bool json = false;
  fbm::tools::MetricsOptions metrics;
};

[[noreturn]] void usage() {
  std::fprintf(stderr,
               "usage: fbm_analyze <trace.fbmt|.pcap|.csv> [--interval S] "
               "[--timeout S] [--delta S] [--prefix24] [--eps P] "
               "[--min-flows N] [--threads N] "
               "[--link NAME=PREFIX[,PREFIX...]] [--emit-partial FILE] "
               "[--shard I/K] [--json] [--store FILE] [--metrics FILE] "
               "[--metrics-every S] [--metrics-prom FILE]\n");
  std::exit(2);
}

/// Parses "--shard I/K" (0-based I < K). Exits through usage() on malformed
/// input.
void parse_shard(const std::string& text, Options& opt) {
  const auto slash = text.find('/');
  std::size_t index = 0;
  std::size_t count = 0;
  try {
    if (slash == std::string::npos) throw std::invalid_argument(text);
    index = std::stoul(text.substr(0, slash));
    count = std::stoul(text.substr(slash + 1));
  } catch (const std::exception&) {
    std::fprintf(stderr, "--shard wants I/K (e.g. 0/4), got \"%s\"\n",
                 text.c_str());
    usage();
  }
  if (count == 0 || count > 1024 || index >= count) {
    std::fprintf(stderr,
                 "--shard %s out of range (need 0 <= I < K <= 1024)\n",
                 text.c_str());
    usage();
  }
  opt.shard_index = index;
  opt.shard_count = count;
}

Options parse_args(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto need_value = [&](const char* flag) -> double {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", flag);
        usage();
      }
      return std::atof(argv[++i]);
    };
    if (arg == "--interval") {
      opt.interval = need_value("--interval");
    } else if (arg == "--timeout") {
      opt.timeout = need_value("--timeout");
    } else if (arg == "--delta") {
      opt.delta = need_value("--delta");
    } else if (arg == "--eps") {
      opt.eps = need_value("--eps");
    } else if (arg == "--min-flows") {
      opt.min_flows = static_cast<std::size_t>(need_value("--min-flows"));
    } else if (arg == "--threads") {
      const double v = need_value("--threads");
      if (!(v >= 0.0) || v > 4096.0) {  // reject NaN/negative before the cast
        std::fprintf(stderr, "--threads must be in [0, 4096] (0 = auto)\n");
        usage();
      }
      opt.threads = static_cast<std::size_t>(v);
    } else if (arg == "--link") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for --link\n");
        usage();
      }
      opt.links.emplace_back(argv[++i]);
    } else if (arg == "--emit-partial") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for --emit-partial\n");
        usage();
      }
      opt.emit_partial = argv[++i];
    } else if (arg == "--store") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for --store\n");
        usage();
      }
      opt.store = argv[++i];
    } else if (arg == "--shard") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for --shard\n");
        usage();
      }
      parse_shard(argv[++i], opt);
    } else if (fbm::tools::parse_metrics_flag(argc, argv, i, opt.metrics,
                                              usage)) {
      // consumed --metrics / --metrics-every / --metrics-prom
    } else if (arg == "--prefix24") {
      opt.prefix24 = true;
    } else if (arg == "--json") {
      opt.json = true;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown flag %s\n", arg.c_str());
      usage();
    } else if (opt.path.empty()) {
      opt.path = arg;
    } else {
      usage();
    }
  }
  if (opt.path.empty()) usage();
  if (opt.shard_count > 1 && opt.emit_partial.empty()) {
    std::fprintf(stderr, "--shard only makes sense with --emit-partial\n");
    usage();
  }
  if (opt.shard_count > 1 && !opt.links.empty()) {
    // Per-link overrides could change the flow definition the shard hash
    // must agree on; key-sharding and link demux do not compose.
    std::fprintf(stderr, "--shard cannot be combined with --link\n");
    usage();
  }
  if (!opt.store.empty() && !opt.emit_partial.empty()) {
    std::fprintf(stderr,
                 "--store needs fitted reports; --emit-partial fits "
                 "nothing\n");
    usage();
  }
  if (!opt.emit_partial.empty() && opt.interval <= 0.0) {
    std::fprintf(stderr,
                 "--emit-partial requires an explicit --interval (a shard "
                 "cannot derive the whole-trace horizon)\n");
    usage();
  }
  return opt;
}

/// Shard-mode packet filter: keep exactly the packets whose flow key hashes
/// to this shard (the same stable hash the parallel pipeline shards by), so
/// K such processes partition the trace by flow and every flow's packet
/// subsequence survives intact — the property that makes merged partials
/// bit-identical to a single run.
[[nodiscard]] bool shard_keeps(const Options& opt,
                               const fbm::api::AnalysisConfig& config,
                               const fbm::net::PacketRecord& p) {
  return opt.shard_count <= 1 ||
         fbm::api::flow_shard_of(p, config.flow_definition(),
                                 opt.shard_count) == opt.shard_index;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace fbm;
  const Options opt = parse_args(argc, argv);
  obs::MetricsExporter metrics = tools::make_metrics_exporter(opt.metrics);
  tools::MetricsFinishGuard metrics_guard(metrics);

  // Whole-trace mode needs the horizon before the pipeline is configured.
  // Since a single interval spans the entire capture anyway (the pipeline
  // holds the whole window), buffer the packets while finding the horizon
  // and analyze from memory — one read of the file, not two.
  double interval_s = opt.interval;
  std::vector<net::PacketRecord> buffered;
  try {
    if (interval_s <= 0.0) {
      auto probe = api::open_trace(opt.path);
      probe->for_each(
          [&](const net::PacketRecord& p) { buffered.push_back(p); });
      if (buffered.empty()) {
        std::fprintf(stderr, "error: no packets in %s\n", opt.path.c_str());
        return 1;
      }
      interval_s = buffered.back().timestamp + 1e-9;
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  if (!(interval_s > 0.0)) {
    std::fprintf(stderr, "error: no packets in %s\n", opt.path.c_str());
    return 1;
  }

  api::AnalysisConfig config;
  config
      .flow_definition(opt.prefix24 ? api::FlowDefinition::prefix24
                                    : api::FlowDefinition::five_tuple)
      .interval_s(interval_s)
      .timeout_s(opt.timeout)
      .delta_s(opt.delta)
      .epsilon(opt.eps)
      .min_flows(opt.min_flows)
      .threads(opt.threads);

  // Multi-link mode: demux through the engine, one session per --link.
  if (!opt.links.empty()) {
    engine::EngineConfig engine_config;
    engine_config.mode = engine::EngineMode::batch;
    engine_config.analysis = config;
    engine_config.threads = opt.threads;
    try {
      // Declared before the engine: pool workers can still invoke the sink
      // while ~Engine drains their queues on an error-path unwind.
      std::map<engine::LinkId, std::vector<api::AnalysisReport>> by_link;
      std::unique_ptr<agg::PartialWriter> writer;
      engine::Engine eng(engine_config);
      if (!opt.emit_partial.empty()) {
        // Distributed mode: declare the link set in the meta frame, stream
        // every link's closed intervals as window frames, fit nothing.
        std::vector<engine::LinkSpec> specs;
        specs.reserve(opt.links.size());
        for (const auto& text : opt.links) {
          specs.push_back(engine::parse_link_spec(text));
        }
        agg::PartialMeta meta = agg::PartialMeta::from_batch(config);
        meta.engine = true;
        for (std::size_t i = 0; i < specs.size(); ++i) {
          meta.links.push_back(
              {static_cast<std::uint32_t>(i), specs[i].name});
        }
        writer = std::make_unique<agg::PartialWriter>(opt.emit_partial,
                                                      std::move(meta));
        eng.set_partial_sink([&](engine::LinkId link, const std::string&,
                                 live::WindowPartial&& partial) {
          writer->add(static_cast<std::uint32_t>(link), partial);
          metrics.tick();
        });
        for (auto& spec : specs) (void)eng.attach(std::move(spec));
      } else {
        eng.set_report_sink([&](engine::LinkReport&& r) {
          by_link[r.link].push_back(std::move(*r.interval));
          metrics.tick();
        });
        for (const auto& text : opt.links) {
          (void)eng.attach(engine::parse_link_spec(text));
        }
      }
      auto source = buffered.empty()
                        ? api::open_trace(opt.path)
                        : api::make_vector_source(std::move(buffered));
      eng.consume(*source);

      if (eng.summary().packets == 0) {
        std::fprintf(stderr, "error: no packets in %s\n", opt.path.c_str());
        return 1;
      }
      if (writer) {
        agg::PartialTotals totals;
        totals.summary = eng.summary();
        for (const auto& link : eng.links()) {
          totals.links.push_back({static_cast<std::uint32_t>(link.id),
                                  link.counters.packets,
                                  link.counters.bytes});
        }
        writer->finish(totals);
        std::fprintf(stderr,
                     "wrote %llu window partials for %zu links to %s\n",
                     static_cast<unsigned long long>(
                         writer->windows_written()),
                     opt.links.size(), opt.emit_partial.c_str());
        return 0;
      }
      std::vector<engine::LinkBatchResult> results;
      for (auto& link : eng.links()) {
        results.push_back({std::move(link.name), link.counters,
                           std::move(by_link[link.id])});
      }
      if (!opt.store.empty()) {
        store::StoreWriter store_writer(opt.store);
        for (std::size_t i = 0; i < results.size(); ++i) {
          for (const auto& r : results[i].reports) {
            auto record = store::from_analysis(r, interval_s);
            record.link_id = static_cast<std::uint32_t>(i);
            record.link_tagged = true;
            record.link_name = results[i].name;
            store_writer.append(record);
          }
        }
        std::fprintf(stderr, "stored %llu interval reports in %s\n",
                     static_cast<unsigned long long>(store_writer.appended()),
                     opt.store.c_str());
      }
      if (opt.json) {
        std::printf("%s\n", engine::to_json(eng.summary(), results).c_str());
        return 0;
      }
      const auto& summary = eng.summary();
      std::printf("trace: %llu packets, %s, %.2f Mbps average over %zu "
                  "links\n\n",
                  static_cast<unsigned long long>(summary.packets),
                  trace::format_duration(summary.duration_s()).c_str(),
                  summary.mean_rate_mbps(), results.size());
      std::printf("%-10s %8s %8s %10s %12s | %9s %9s | %7s %10s\n", "link",
                  "t0", "flows", "lambda", "E[S] kbit", "meas CoV",
                  "mdl CoV", "b_hat", "cap Mbps");
      for (const auto& link : results) {
        for (const auto& r : link.reports) {
          std::printf("%-10s %8.1f %8zu %10.1f %12.1f | %8.1f%% %8.1f%% | "
                      "%7.2f %10.2f\n",
                      link.name.c_str(), r.start_s, r.inputs.flows,
                      r.inputs.lambda, r.inputs.mean_size_bits / 1e3,
                      100.0 * r.measured.cov, 100.0 * r.model_cov,
                      r.shot_b_used, r.plan.capacity_bps / 1e6);
        }
        std::printf("%-10s %llu packets routed\n\n", link.name.c_str(),
                    static_cast<unsigned long long>(link.counters.packets));
      }
      return 0;
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 1;
    }
  }

  std::vector<api::AnalysisReport> reports;
  trace::TraceSummary summary;
  std::uint64_t flows_emitted = 0;
  std::unique_ptr<agg::PartialWriter> writer;
  // Serial and sharded pipelines share one interface; --threads N != 1
  // picks the sharded one (0 = every core), with bit-for-bit identical
  // reports.
  const auto run = [&](auto& pipeline) {
    auto source = buffered.empty()
                      ? api::open_trace(opt.path)
                      : api::make_vector_source(std::move(buffered));
    if (!opt.emit_partial.empty()) {
      // Distributed mode: closed intervals leave as raw sufficient
      // statistics; fbm_aggregate folds the shards and fits once.
      writer = std::make_unique<agg::PartialWriter>(
          opt.emit_partial, agg::PartialMeta::from_batch(config));
      pipeline.set_partial_sink([&](api::ShardInterval&& iv) {
        writer->add(0, live::WindowPartial{iv.index, 0, 0, 0,
                                           std::move(iv.flows),
                                           std::move(iv.bins)});
        metrics.tick();
      });
    } else {
      // Reports stream out through the per-window flush hook as intervals
      // close; memory stays window-bounded (interval mode reads the file
      // directly, nothing buffered).
      pipeline.set_report_sink([&](api::AnalysisReport&& r) {
        reports.push_back(std::move(r));
        metrics.tick();
      });
    }
    if (opt.shard_count > 1) {
      source->for_each([&](const net::PacketRecord& p) {
        if (shard_keeps(opt, config, p)) pipeline.push(p);
      });
      pipeline.finish();
    } else {
      pipeline.consume(*source);
    }
    summary = pipeline.summary();
    flows_emitted = pipeline.counters().flows_emitted;
  };
  try {
    if (opt.threads != 1) {
      api::ParallelAnalysisPipeline pipeline(config);
      run(pipeline);
    } else {
      api::AnalysisPipeline pipeline(config);
      run(pipeline);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }

  if (summary.packets == 0 && (writer == nullptr || opt.shard_count <= 1)) {
    // In shard mode an empty shard is legitimate (a small trace may hash
    // every flow elsewhere); the partial below records zero windows and the
    // merger folds it as a no-op.
    std::fprintf(stderr, "error: no packets in %s\n", opt.path.c_str());
    return 1;
  }

  if (writer) {
    try {
      writer->finish({summary, {}});
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 1;
    }
    std::fprintf(
        stderr, "wrote %llu interval partials to %s\n",
        static_cast<unsigned long long>(writer->windows_written()),
        opt.emit_partial.c_str());
    return 0;
  }

  if (!opt.store.empty()) {
    try {
      store::StoreWriter store_writer(opt.store);
      for (const auto& r : reports) {
        store_writer.append(store::from_analysis(r, interval_s));
      }
      std::fprintf(stderr, "stored %llu interval reports in %s\n",
                   static_cast<unsigned long long>(store_writer.appended()),
                   opt.store.c_str());
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 1;
    }
  }

  if (opt.json) {
    std::printf("%s\n", api::to_json(summary, reports).c_str());
    return 0;
  }

  std::printf("trace: %llu packets, %s, %.2f Mbps average, mean packet %.0f "
              "B\n",
              static_cast<unsigned long long>(summary.packets),
              trace::format_duration(summary.duration_s()).c_str(),
              summary.mean_rate_mbps(), summary.mean_packet_bytes());
  std::printf("flows (%s): %llu completed\n\n",
              opt.prefix24 ? "/24 prefix" : "5-tuple",
              static_cast<unsigned long long>(flows_emitted));

  std::printf("%8s %8s %10s %12s | %9s %9s | %7s %10s\n", "t0", "flows",
              "lambda", "E[S] kbit", "meas CoV", "mdl CoV", "b_hat",
              "cap Mbps");
  for (const auto& r : reports) {
    std::printf("%8.1f %8zu %10.1f %12.1f | %8.1f%% %8.1f%% | %7.2f %10.2f\n",
                r.start_s, r.inputs.flows, r.inputs.lambda,
                r.inputs.mean_size_bits / 1e3, 100.0 * r.measured.cov,
                100.0 * r.model_cov, r.shot_b_used,
                r.plan.capacity_bps / 1e6);
  }
  std::printf("\ncapacity column: E[R] + q(1-eps) sigma at eps=%.2g with the "
              "fitted shot\n", opt.eps);
  return 0;
}
