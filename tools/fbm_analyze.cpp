// fbm_analyze — fit the shot-noise model to a packet trace and report it.
//
// Usage:
//   fbm_analyze <trace> [--interval S] [--timeout S] [--delta S]
//               [--prefix24] [--eps P] [--min-flows N] [--threads N]
//               [--link NAME=PREFIX[,PREFIX...] ...] [--json]
//
// <trace> may be .fbmt (native, streamed with window-bounded memory), .pcap,
// or .csv. For each analysis interval the tool prints the three model
// parameters, measured vs model mean and CoV, the fitted shot power b, and
// a capacity recommendation; --json emits the same as one JSON document.
// --threads N > 1 analyzes through N flow-key-hashed worker shards; the
// output is bit-for-bit identical to the single-threaded run.
//
// --link (repeatable) switches to the multi-link engine: the stream is
// demuxed to one analysis session per link (longest-prefix match across
// overlapping claims; NAME=all or NAME=* for a match-all aggregate), each
// proven bit-for-bit equal to analyzing that link's packets alone. The
// table gains a link column; --json groups intervals per link. --threads
// then sizes the engine's session worker pool instead.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "api/api.hpp"

namespace {

struct Options {
  std::string path;
  double interval = 0.0;  // 0 = whole trace
  double timeout = 60.0;
  double delta = fbm::measure::kPaperDelta;
  bool prefix24 = false;
  double eps = 0.01;
  std::size_t min_flows = 10;
  std::size_t threads = 1;
  std::vector<std::string> links;  // empty = single-link pipeline
  bool json = false;
};

[[noreturn]] void usage() {
  std::fprintf(stderr,
               "usage: fbm_analyze <trace.fbmt|.pcap|.csv> [--interval S] "
               "[--timeout S] [--delta S] [--prefix24] [--eps P] "
               "[--min-flows N] [--threads N] "
               "[--link NAME=PREFIX[,PREFIX...]] [--json]\n");
  std::exit(2);
}

Options parse_args(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto need_value = [&](const char* flag) -> double {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", flag);
        usage();
      }
      return std::atof(argv[++i]);
    };
    if (arg == "--interval") {
      opt.interval = need_value("--interval");
    } else if (arg == "--timeout") {
      opt.timeout = need_value("--timeout");
    } else if (arg == "--delta") {
      opt.delta = need_value("--delta");
    } else if (arg == "--eps") {
      opt.eps = need_value("--eps");
    } else if (arg == "--min-flows") {
      opt.min_flows = static_cast<std::size_t>(need_value("--min-flows"));
    } else if (arg == "--threads") {
      const double v = need_value("--threads");
      if (!(v >= 1.0) || v > 4096.0) {  // reject NaN/negative before the cast
        std::fprintf(stderr, "--threads must be in [1, 4096]\n");
        usage();
      }
      opt.threads = static_cast<std::size_t>(v);
    } else if (arg == "--link") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for --link\n");
        usage();
      }
      opt.links.emplace_back(argv[++i]);
    } else if (arg == "--prefix24") {
      opt.prefix24 = true;
    } else if (arg == "--json") {
      opt.json = true;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown flag %s\n", arg.c_str());
      usage();
    } else if (opt.path.empty()) {
      opt.path = arg;
    } else {
      usage();
    }
  }
  if (opt.path.empty()) usage();
  return opt;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace fbm;
  const Options opt = parse_args(argc, argv);

  // Whole-trace mode needs the horizon before the pipeline is configured.
  // Since a single interval spans the entire capture anyway (the pipeline
  // holds the whole window), buffer the packets while finding the horizon
  // and analyze from memory — one read of the file, not two.
  double interval_s = opt.interval;
  std::vector<net::PacketRecord> buffered;
  try {
    if (interval_s <= 0.0) {
      auto probe = api::open_trace(opt.path);
      probe->for_each(
          [&](const net::PacketRecord& p) { buffered.push_back(p); });
      if (buffered.empty()) {
        std::fprintf(stderr, "error: no packets in %s\n", opt.path.c_str());
        return 1;
      }
      interval_s = buffered.back().timestamp + 1e-9;
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  if (!(interval_s > 0.0)) {
    std::fprintf(stderr, "error: no packets in %s\n", opt.path.c_str());
    return 1;
  }

  api::AnalysisConfig config;
  config
      .flow_definition(opt.prefix24 ? api::FlowDefinition::prefix24
                                    : api::FlowDefinition::five_tuple)
      .interval_s(interval_s)
      .timeout_s(opt.timeout)
      .delta_s(opt.delta)
      .epsilon(opt.eps)
      .min_flows(opt.min_flows)
      .threads(opt.threads);

  // Multi-link mode: demux through the engine, one session per --link.
  if (!opt.links.empty()) {
    engine::EngineConfig engine_config;
    engine_config.mode = engine::EngineMode::batch;
    engine_config.analysis = config;
    engine_config.threads = opt.threads;
    try {
      // Declared before the engine: pool workers can still invoke the sink
      // while ~Engine drains their queues on an error-path unwind.
      std::map<engine::LinkId, std::vector<api::AnalysisReport>> by_link;
      engine::Engine eng(engine_config);
      eng.set_report_sink([&](engine::LinkReport&& r) {
        by_link[r.link].push_back(std::move(*r.interval));
      });
      for (const auto& text : opt.links) {
        (void)eng.attach(engine::parse_link_spec(text));
      }
      auto source = buffered.empty()
                        ? api::open_trace(opt.path)
                        : api::make_vector_source(std::move(buffered));
      eng.consume(*source);

      if (eng.summary().packets == 0) {
        std::fprintf(stderr, "error: no packets in %s\n", opt.path.c_str());
        return 1;
      }
      std::vector<engine::LinkBatchResult> results;
      for (auto& link : eng.links()) {
        results.push_back({std::move(link.name), link.counters,
                           std::move(by_link[link.id])});
      }
      if (opt.json) {
        std::printf("%s\n", engine::to_json(eng.summary(), results).c_str());
        return 0;
      }
      const auto& summary = eng.summary();
      std::printf("trace: %llu packets, %s, %.2f Mbps average over %zu "
                  "links\n\n",
                  static_cast<unsigned long long>(summary.packets),
                  trace::format_duration(summary.duration_s()).c_str(),
                  summary.mean_rate_mbps(), results.size());
      std::printf("%-10s %8s %8s %10s %12s | %9s %9s | %7s %10s\n", "link",
                  "t0", "flows", "lambda", "E[S] kbit", "meas CoV",
                  "mdl CoV", "b_hat", "cap Mbps");
      for (const auto& link : results) {
        for (const auto& r : link.reports) {
          std::printf("%-10s %8.1f %8zu %10.1f %12.1f | %8.1f%% %8.1f%% | "
                      "%7.2f %10.2f\n",
                      link.name.c_str(), r.start_s, r.inputs.flows,
                      r.inputs.lambda, r.inputs.mean_size_bits / 1e3,
                      100.0 * r.measured.cov, 100.0 * r.model_cov,
                      r.shot_b_used, r.plan.capacity_bps / 1e6);
        }
        std::printf("%-10s %llu packets routed\n\n", link.name.c_str(),
                    static_cast<unsigned long long>(link.counters.packets));
      }
      return 0;
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 1;
    }
  }

  std::vector<api::AnalysisReport> reports;
  trace::TraceSummary summary;
  std::uint64_t flows_emitted = 0;
  // Serial and sharded pipelines share one interface; --threads N > 1 picks
  // the sharded one, with bit-for-bit identical reports.
  const auto run = [&](auto& pipeline) {
    auto source = buffered.empty()
                      ? api::open_trace(opt.path)
                      : api::make_vector_source(std::move(buffered));
    // Reports stream out through the per-window flush hook as intervals
    // close; memory stays window-bounded (interval mode reads the file
    // directly, nothing buffered).
    pipeline.set_report_sink(
        [&](api::AnalysisReport&& r) { reports.push_back(std::move(r)); });
    pipeline.consume(*source);
    summary = pipeline.summary();
    flows_emitted = pipeline.counters().flows_emitted;
  };
  try {
    if (opt.threads > 1) {
      api::ParallelAnalysisPipeline pipeline(config);
      run(pipeline);
    } else {
      api::AnalysisPipeline pipeline(config);
      run(pipeline);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }

  if (summary.packets == 0) {
    std::fprintf(stderr, "error: no packets in %s\n", opt.path.c_str());
    return 1;
  }

  if (opt.json) {
    std::printf("%s\n", api::to_json(summary, reports).c_str());
    return 0;
  }

  std::printf("trace: %llu packets, %s, %.2f Mbps average, mean packet %.0f "
              "B\n",
              static_cast<unsigned long long>(summary.packets),
              trace::format_duration(summary.duration_s()).c_str(),
              summary.mean_rate_mbps(), summary.mean_packet_bytes());
  std::printf("flows (%s): %llu completed\n\n",
              opt.prefix24 ? "/24 prefix" : "5-tuple",
              static_cast<unsigned long long>(flows_emitted));

  std::printf("%8s %8s %10s %12s | %9s %9s | %7s %10s\n", "t0", "flows",
              "lambda", "E[S] kbit", "meas CoV", "mdl CoV", "b_hat",
              "cap Mbps");
  for (const auto& r : reports) {
    std::printf("%8.1f %8zu %10.1f %12.1f | %8.1f%% %8.1f%% | %7.2f %10.2f\n",
                r.start_s, r.inputs.flows, r.inputs.lambda,
                r.inputs.mean_size_bits / 1e3, 100.0 * r.measured.cov,
                100.0 * r.model_cov, r.shot_b_used,
                r.plan.capacity_bps / 1e6);
  }
  std::printf("\ncapacity column: E[R] + q(1-eps) sigma at eps=%.2g with the "
              "fitted shot\n", opt.eps);
  return 0;
}
