// fbm_analyze — fit the shot-noise model to a packet trace and report it.
//
// Usage:
//   fbm_analyze <trace> [--interval S] [--timeout S] [--delta S]
//               [--prefix24] [--eps P]
//
// <trace> may be .fbmt (native), .pcap, or .csv. For each analysis interval
// the tool prints the three model parameters, measured vs model mean and
// CoV, the fitted shot power b, and a capacity recommendation.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/fitting.hpp"
#include "core/moments.hpp"
#include "dimension/provisioning.hpp"
#include "flow/classifier.hpp"
#include "flow/interval.hpp"
#include "measure/rate_meter.hpp"
#include "trace/pcap.hpp"
#include "trace/trace_format.hpp"
#include "trace/trace_stats.hpp"

namespace {

struct Options {
  std::string path;
  double interval = 0.0;  // 0 = whole trace
  double timeout = 60.0;
  double delta = fbm::measure::kPaperDelta;
  bool prefix24 = false;
  double eps = 0.01;
};

[[noreturn]] void usage() {
  std::fprintf(stderr,
               "usage: fbm_analyze <trace.fbmt|.pcap|.csv> [--interval S] "
               "[--timeout S] [--delta S] [--prefix24] [--eps P]\n");
  std::exit(2);
}

Options parse_args(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto need_value = [&](const char* flag) -> double {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", flag);
        usage();
      }
      return std::atof(argv[++i]);
    };
    if (arg == "--interval") {
      opt.interval = need_value("--interval");
    } else if (arg == "--timeout") {
      opt.timeout = need_value("--timeout");
    } else if (arg == "--delta") {
      opt.delta = need_value("--delta");
    } else if (arg == "--eps") {
      opt.eps = need_value("--eps");
    } else if (arg == "--prefix24") {
      opt.prefix24 = true;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown flag %s\n", arg.c_str());
      usage();
    } else if (opt.path.empty()) {
      opt.path = arg;
    } else {
      usage();
    }
  }
  if (opt.path.empty()) usage();
  return opt;
}

std::vector<fbm::net::PacketRecord> load(const std::string& path) {
  const auto ends_with = [&](const char* suffix) {
    const std::size_t n = std::strlen(suffix);
    return path.size() >= n && path.compare(path.size() - n, n, suffix) == 0;
  };
  if (ends_with(".pcap")) return fbm::trace::import_pcap(path);
  if (ends_with(".csv")) return fbm::trace::import_csv(path);
  return fbm::trace::read_trace(path);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace fbm;
  const Options opt = parse_args(argc, argv);

  std::vector<net::PacketRecord> packets;
  try {
    packets = load(opt.path);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  if (packets.empty()) {
    std::fprintf(stderr, "error: no packets in %s\n", opt.path.c_str());
    return 1;
  }

  const auto summary = trace::summarize(packets);
  std::printf("trace: %llu packets, %s, %.2f Mbps average, mean packet %.0f "
              "B\n",
              static_cast<unsigned long long>(summary.packets),
              trace::format_duration(summary.duration_s()).c_str(),
              summary.mean_rate_mbps(), summary.mean_packet_bytes());

  const double horizon = summary.last_ts + 1e-9;
  const double interval_s = opt.interval > 0.0 ? opt.interval : horizon;

  flow::ClassifierOptions copt;
  copt.timeout = opt.timeout;
  copt.interval = interval_s;
  copt.record_discards = true;

  std::vector<flow::FlowRecord> flows;
  std::vector<flow::DiscardedPacket> discards;
  if (opt.prefix24) {
    flow::Prefix24Classifier c(copt);
    for (const auto& p : packets) c.add(p);
    c.flush();
    discards = c.discards();
    flows = c.take_flows();
  } else {
    flow::FiveTupleClassifier c(copt);
    for (const auto& p : packets) c.add(p);
    c.flush();
    discards = c.discards();
    flows = c.take_flows();
  }
  std::sort(flows.begin(), flows.end(),
            [](const auto& a, const auto& b) { return a.start < b.start; });
  std::printf("flows (%s): %zu completed\n\n",
              opt.prefix24 ? "/24 prefix" : "5-tuple", flows.size());

  const auto intervals = flow::group_by_interval(flows, interval_s, horizon);
  std::printf("%8s %8s %10s %12s | %9s %9s | %7s %10s\n", "t0", "flows",
              "lambda", "E[S] kbit", "meas CoV", "mdl CoV", "b_hat",
              "cap Mbps");
  for (const auto& iv : intervals) {
    if (iv.flows.size() < 10) continue;
    const auto in = flow::estimate_inputs(iv);
    const auto series =
        measure::measure_rate(packets, iv.start, iv.end(), opt.delta,
                              discards);
    const auto mm = measure::rate_moments(series);
    const auto b = core::fit_power_b(mm.variance, in);
    const double bb = b.value_or(1.0);
    const auto plan = dimension::plan_link(in, bb, opt.eps);
    std::printf("%8.1f %8zu %10.1f %12.1f | %8.1f%% %8.1f%% | %7.2f %10.2f\n",
                iv.start, iv.flows.size(), in.lambda,
                in.mean_size_bits / 1e3, 100.0 * mm.cov,
                100.0 * core::power_shot_cov(in, bb), bb,
                plan.capacity_bps / 1e6);
  }
  std::printf("\ncapacity column: E[R] + q(1-eps) sigma at eps=%.2g with the "
              "fitted shot\n", opt.eps);
  return 0;
}
