// fbm_bench — runs the registered paper-reproduction benches with JSON
// telemetry and enforces the benchmark-regression gate.
//
//   fbm_bench --list
//   fbm_bench --filter fig08 --json out/
//   fbm_bench --quick --json bench-out/ --baseline bench/baseline.json
//   fbm_bench --quick --write-baseline bench/baseline.json
//   fbm_bench --compare bench/baseline.json bench-out/current.json
//
// Every selected bench produces out/BENCH_<name>.json (schema in
// perf/bench_report.hpp) plus an aggregate out/BENCH_summary.json. With
// --baseline, any bench whose packets_per_s falls more than
// --max-regression (default 0.25) below the checked-in value fails the run
// — the CI bench-smoke job is exactly this invocation.
//
// --compare runs no benches: it reads two baseline-format files (A = the
// reference, B = the candidate) and prints a per-bench packets_per_s delta
// table in Markdown — the CI job pipes it into the step summary so every PR
// shows its bench movement.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common.hpp"
#include "perf/bench_report.hpp"

namespace {

using fbm::bench::BenchInfo;

struct Options {
  std::string filter;
  std::string json_dir;
  std::string baseline_path;
  std::string write_baseline_path;
  std::string compare_a;
  std::string compare_b;
  double max_regression = 0.25;
  bool quick = false;
  bool list = false;
};

void usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--list] [--filter SUBSTR] [--quick] [--json DIR]\n"
      "          [--baseline FILE] [--max-regression FRAC]\n"
      "          [--write-baseline FILE]\n"
      "       %s --compare A.json B.json\n",
      argv0, argv0);
}

bool parse_args(int argc, char** argv, Options& opt) {
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    const auto value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (std::strcmp(arg, "--list") == 0) {
      opt.list = true;
    } else if (std::strcmp(arg, "--quick") == 0) {
      opt.quick = true;
    } else if (std::strcmp(arg, "--filter") == 0) {
      const char* v = value();
      if (v == nullptr) return false;
      opt.filter = v;
    } else if (std::strcmp(arg, "--json") == 0) {
      const char* v = value();
      if (v == nullptr) return false;
      opt.json_dir = v;
    } else if (std::strcmp(arg, "--baseline") == 0) {
      const char* v = value();
      if (v == nullptr) return false;
      opt.baseline_path = v;
    } else if (std::strcmp(arg, "--write-baseline") == 0) {
      const char* v = value();
      if (v == nullptr) return false;
      opt.write_baseline_path = v;
    } else if (std::strcmp(arg, "--compare") == 0) {
      const char* a = value();
      const char* b = value();
      if (a == nullptr || b == nullptr) return false;
      opt.compare_a = a;
      opt.compare_b = b;
    } else if (std::strcmp(arg, "--max-regression") == 0) {
      const char* v = value();
      if (v == nullptr) return false;
      opt.max_regression = std::atof(v);
      if (!(opt.max_regression > 0.0 && opt.max_regression < 1.0)) {
        std::fprintf(stderr, "--max-regression must be in (0, 1)\n");
        return false;
      }
    } else {
      return false;
    }
  }
  return true;
}

/// Baseline file: a flat JSON object mapping bench name -> packets_per_s.
/// Returns a negative value when the bench has no baseline entry.
double baseline_value(const std::string& content, const std::string& name) {
  const std::string needle = "\"" + name + "\":";
  const std::size_t pos = content.find(needle);
  if (pos == std::string::npos) return -1.0;
  return std::strtod(content.c_str() + pos + needle.size(), nullptr);
}

bool write_baseline(const std::string& path,
                    const std::vector<fbm::perf::BenchReport>& reports,
                    bool quick) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  out << "{\n  \"schema\": 1,\n  \"quick\": " << (quick ? "true" : "false");
  for (const auto& r : reports) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.1f", r.packets_per_s);
    out << ",\n  \"" << r.bench << "\": " << buf;
    // Analyze-only throughput (classify+fit stage time, generation
    // excluded) gates what PRs actually change; benches that move no
    // stage timers get no ".analyze" entry and stay wall-gated only.
    if (r.analyze_packets_per_s > 0.0) {
      std::snprintf(buf, sizeof buf, "%.1f", r.analyze_packets_per_s);
      out << ",\n  \"" << r.bench << ".analyze\": " << buf;
    }
  }
  out << "\n}\n";
  return static_cast<bool>(out);
}

/// Parses a baseline-format file (flat "name": number object) into ordered
/// (bench, packets_per_s) pairs; the "schema"/"quick" bookkeeping keys are
/// skipped. Returns false when the file cannot be read.
bool read_baseline_entries(
    const std::string& path,
    std::vector<std::pair<std::string, double>>& out) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot read %s\n", path.c_str());
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string content = buf.str();
  std::size_t pos = 0;
  while ((pos = content.find('"', pos)) != std::string::npos) {
    const std::size_t end = content.find('"', pos + 1);
    if (end == std::string::npos) break;
    const std::string key = content.substr(pos + 1, end - pos - 1);
    pos = end + 1;
    if (key == "schema" || key == "quick") continue;
    const std::size_t colon = content.find(':', pos);
    if (colon == std::string::npos) break;
    out.emplace_back(key,
                     std::strtod(content.c_str() + colon + 1, nullptr));
  }
  return true;
}

/// --compare mode: a Markdown delta table of B (candidate) over A
/// (reference), one row per bench in either file.
int run_compare(const std::string& a_path, const std::string& b_path) {
  std::vector<std::pair<std::string, double>> a;
  std::vector<std::pair<std::string, double>> b;
  if (!read_baseline_entries(a_path, a) ||
      !read_baseline_entries(b_path, b)) {
    return 2;
  }
  const auto find = [](const std::vector<std::pair<std::string, double>>& v,
                       const std::string& key) -> const double* {
    for (const auto& [k, val] : v) {
      if (k == key) return &val;
    }
    return nullptr;
  };

  std::printf("| bench | %s | %s | delta |\n", a_path.c_str(),
              b_path.c_str());
  std::printf("|---|---:|---:|---:|\n");
  for (const auto& [name, base] : a) {
    const double* cand = find(b, name);
    if (cand == nullptr) {
      std::printf("| %s | %.0f | - | removed |\n", name.c_str(), base);
    } else if (base > 0.0) {
      std::printf("| %s | %.0f | %.0f | %+.1f%% |\n", name.c_str(), base,
                  *cand, (*cand / base - 1.0) * 100.0);
    } else {
      std::printf("| %s | %.0f | %.0f | - |\n", name.c_str(), base, *cand);
    }
  }
  for (const auto& [name, cand] : b) {
    if (find(a, name) == nullptr) {
      std::printf("| %s | - | %.0f | new |\n", name.c_str(), cand);
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!parse_args(argc, argv, opt)) {
    usage(argv[0]);
    return 2;
  }

  if (!opt.compare_a.empty()) {
    return run_compare(opt.compare_a, opt.compare_b);
  }

  auto benches = fbm::bench::registered_benches();
  std::sort(benches.begin(), benches.end(),
            [](const BenchInfo& a, const BenchInfo& b) {
              return std::strcmp(a.name, b.name) < 0;
            });

  if (opt.list) {
    for (const auto& info : benches) std::printf("%s\n", info.name);
    return 0;
  }

  std::vector<fbm::perf::BenchReport> reports;
  std::vector<std::string> failed;
  for (const auto& info : benches) {
    if (!opt.filter.empty() &&
        std::string(info.name).find(opt.filter) == std::string::npos) {
      continue;
    }
    std::fprintf(stderr, "[fbm_bench] running %s ...\n", info.name);
    fbm::perf::BenchReport report;
    const int rc = fbm::bench::run_registered(info, opt.quick, report);
    std::fprintf(stderr,
                 "[fbm_bench] %s: rc=%d wall=%.2fs packets/s=%.0f "
                 "peak_rss=%llu kB\n",
                 info.name, rc, report.wall_s, report.packets_per_s,
                 static_cast<unsigned long long>(report.peak_rss_kb));
    if (rc != 0) failed.push_back(info.name);
    if (!opt.json_dir.empty() &&
        !fbm::bench::write_report_json(opt.json_dir, report)) {
      failed.push_back(info.name + std::string(" (json write)"));
    }
    reports.push_back(std::move(report));
  }

  if (reports.empty()) {
    std::fprintf(stderr, "no bench matches filter '%s'\n",
                 opt.filter.c_str());
    return 2;
  }

  if (!opt.json_dir.empty()) {
    const std::string path = opt.json_dir + "/BENCH_summary.json";
    std::ofstream out(path);
    if (out) {
      out << fbm::perf::summary_json(reports);
    } else {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      failed.push_back("BENCH_summary.json");
    }
  }

  if (!opt.write_baseline_path.empty() &&
      !write_baseline(opt.write_baseline_path, reports, opt.quick)) {
    failed.push_back("baseline write");
  }

  if (!opt.baseline_path.empty()) {
    std::ifstream in(opt.baseline_path);
    if (!in) {
      std::fprintf(stderr, "cannot read baseline %s\n",
                   opt.baseline_path.c_str());
      return 2;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string content = buf.str();
    const auto gate_one = [&](const std::string& key, double measured,
                              const char* missing_reason) {
      const double base = baseline_value(content, key);
      // Benches without a baseline entry or without packet telemetry are
      // not gated — but say so, so a bench silently dropping out of the
      // gate (renamed, or its counting broke) is visible in the log.
      if (base <= 0.0 || measured <= 0.0) {
        std::fprintf(stderr, "[fbm_bench] gate %-28s UNGATED (%s)\n",
                     key.c_str(),
                     base <= 0.0 ? "no baseline entry" : missing_reason);
        return;
      }
      const double floor = base * (1.0 - opt.max_regression);
      const bool regressed = measured < floor;
      std::fprintf(stderr,
                   "[fbm_bench] gate %-28s %12.0f vs baseline %12.0f "
                   "(floor %12.0f) %s\n",
                   key.c_str(), measured, base, floor,
                   regressed ? "REGRESSED" : "ok");
      if (regressed) failed.push_back(key + std::string(" (regression)"));
    };
    for (const auto& r : reports) {
      gate_one(r.bench, r.packets_per_s, "no packets counted");
      // The ".analyze" companion gates classify+fit throughput alone, so
      // a regression in the analysis path can't hide behind the
      // generator's share of the wall time.
      if (baseline_value(content, r.bench + ".analyze") > 0.0) {
        gate_one(r.bench + ".analyze", r.analyze_packets_per_s,
                 "no stage time recorded");
      }
    }
  }

  if (!failed.empty()) {
    std::fprintf(stderr, "[fbm_bench] FAILED:");
    for (const auto& name : failed) {
      std::fprintf(stderr, " %s", name.c_str());
    }
    std::fprintf(stderr, "\n");
    return 1;
  }
  std::fprintf(stderr, "[fbm_bench] %zu bench(es) ok\n", reports.size());
  return 0;
}
