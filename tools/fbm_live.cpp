// fbm_live — continuous sliding-window monitoring of a packet trace.
//
// Usage:
//   fbm_live <trace.fbmt|.pcap|.csv> [--window S] [--stride S] [--timeout S]
//            [--delta S] [--prefix24] [--eps P] [--k-sigma K] [--max-order M]
//            [--consecutive N] [--warmup N] [--follow] [--idle S]
//            [--max-windows N]
//            [--link NAME=PREFIX[,PREFIX...] ...] [--threads N]
//            [--emit-partial FILE] [--shard I/K] [--json]
//            [--checkpoint FILE] [--checkpoint-every N] [--restore FILE]
//            [--store FILE] [--metrics FILE] [--metrics-every S]
//            [--metrics-prom FILE]
//
// Streams the trace through live::WindowedEstimator: per sliding window the
// three model parameters, measured vs model rate, fitted shot, capacity
// plan, the rolling next-window forecast and the anomaly verdict. --json
// emits one JSON object per window (JSONL, schema in
// src/live/window_report.hpp); the default is a human-readable table with
// ALERT markers. --follow keeps polling the file for appended records
// (tail -f; .fbmt/.pcap only), stopping after --idle seconds without new
// data (default: forever). --max-windows stops after N reports either way.
//
// --link (repeatable) switches to the multi-link engine: the stream is
// demuxed to one session per link (longest-prefix match for overlapping
// claims; NAME=all or NAME=* for a match-all aggregate) and every window
// report carries its link — a "link" name column, or a leading "link" JSONL
// field (schema pinned by the engine-smoke CI job). --threads N spreads the
// sessions over a worker pool (0 = every core).
//
// --emit-partial FILE switches to distributed-aggregation mode: no window
// is fitted, forecast or judged; each closed window's raw sufficient
// statistics stream to FILE as an agg::PartialReport for fbm_aggregate to
// merge and fit once — the merged JSONL is byte-identical to a
// single-machine run. --shard I/K keeps only the packets whose flow key
// hashes to shard I of K, so K such runs partition the stream by flow.
// Incompatible with --follow and --max-windows (a partial file is valid
// only once the stream ends cleanly and the end frame is written).
//
// Durable operations (src/ckpt/, src/store/):
//   --checkpoint FILE        snapshot the complete mid-stream state every
//                            --checkpoint-every N closed windows (default 1),
//                            atomically (tmp + rename). Works in both the
//                            single-estimator and --link engine modes.
//   --restore FILE           resume from a checkpoint: the config is
//                            validated against the file's meta, the first
//                            <checkpointed packets> records of the trace are
//                            skipped, and the remaining output is
//                            byte-identical to the uninterrupted run's
//                            (stderr announces "resuming after N reports" —
//                            keep the killed run's first N lines and append).
//   --store FILE             append every finished window to a queryable
//                            on-disk report store (fbm_query reads it; a
//                            SIGKILL mid-append is recovered on reopen).
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "agg/agg.hpp"
#include "api/api.hpp"
#include "api/shard.hpp"
#include "ckpt/checkpoint.hpp"
#include "live/live.hpp"
#include "metrics_cli.hpp"
#include "obs/catalog.hpp"
#include "store/report_store.hpp"
#include "trace/trace_stats.hpp"

namespace {

struct Options {
  std::string path;
  double window = 60.0;
  double stride = 0.0;  // 0 = window
  double timeout = 60.0;
  double delta = fbm::measure::kPaperDelta;
  bool prefix24 = false;
  double eps = 0.01;
  double k_sigma = 3.0;
  std::size_t max_order = 8;
  std::size_t consecutive = 1;
  std::size_t warmup = 0;  ///< windows unjudged while the forecaster settles
  bool follow = false;
  double idle = 0.0;  // 0 = wait forever
  std::uint64_t max_windows = 0;  // 0 = unlimited
  std::vector<std::string> links;  // empty = single-link estimator
  std::size_t threads = 1;
  std::string emit_partial;  // empty = fit locally
  std::size_t shard_index = 0;
  std::size_t shard_count = 1;
  bool json = false;
  std::string checkpoint;  // empty = no checkpointing
  std::uint64_t checkpoint_every = 1;  // closed windows per checkpoint
  std::string restore;     // empty = start fresh
  std::string store;       // empty = no on-disk report store
  fbm::tools::MetricsOptions metrics;
};

[[noreturn]] void usage() {
  std::fprintf(
      stderr,
      "usage: fbm_live <trace.fbmt|.pcap|.csv> [--window S] [--stride S] "
      "[--timeout S] [--delta S] [--prefix24] [--eps P] [--k-sigma K] "
      "[--max-order M] [--consecutive N] [--warmup N] [--follow] [--idle S] "
      "[--max-windows N] [--link NAME=PREFIX[,PREFIX...]] [--threads N] "
      "[--emit-partial FILE] [--shard I/K] [--json] [--checkpoint FILE] "
      "[--checkpoint-every N] [--restore FILE] [--store FILE] "
      "[--metrics FILE] [--metrics-every S] [--metrics-prom FILE]\n");
  std::exit(2);
}

/// Parses "--shard I/K" (0-based I < K). Exits through usage() on malformed
/// input.
void parse_shard(const std::string& text, Options& opt) {
  const auto slash = text.find('/');
  std::size_t index = 0;
  std::size_t count = 0;
  try {
    if (slash == std::string::npos) throw std::invalid_argument(text);
    index = std::stoul(text.substr(0, slash));
    count = std::stoul(text.substr(slash + 1));
  } catch (const std::exception&) {
    std::fprintf(stderr, "--shard wants I/K (e.g. 0/4), got \"%s\"\n",
                 text.c_str());
    usage();
  }
  if (count == 0 || count > 1024 || index >= count) {
    std::fprintf(stderr,
                 "--shard %s out of range (need 0 <= I < K <= 1024)\n",
                 text.c_str());
    usage();
  }
  opt.shard_index = index;
  opt.shard_count = count;
}

Options parse_args(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto need_value = [&](const char* flag) -> double {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", flag);
        usage();
      }
      return std::atof(argv[++i]);
    };
    if (arg == "--window") {
      opt.window = need_value("--window");
    } else if (arg == "--stride") {
      opt.stride = need_value("--stride");
    } else if (arg == "--timeout") {
      opt.timeout = need_value("--timeout");
    } else if (arg == "--delta") {
      opt.delta = need_value("--delta");
    } else if (arg == "--eps") {
      opt.eps = need_value("--eps");
    } else if (arg == "--k-sigma") {
      opt.k_sigma = need_value("--k-sigma");
    } else if (arg == "--max-order") {
      opt.max_order = static_cast<std::size_t>(need_value("--max-order"));
    } else if (arg == "--consecutive") {
      opt.consecutive = static_cast<std::size_t>(need_value("--consecutive"));
    } else if (arg == "--warmup") {
      opt.warmup = static_cast<std::size_t>(need_value("--warmup"));
    } else if (arg == "--idle") {
      opt.idle = need_value("--idle");
    } else if (arg == "--max-windows") {
      opt.max_windows =
          static_cast<std::uint64_t>(need_value("--max-windows"));
    } else if (arg == "--link") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for --link\n");
        usage();
      }
      opt.links.emplace_back(argv[++i]);
    } else if (arg == "--threads") {
      const double v = need_value("--threads");
      if (!(v >= 0.0) || v > 4096.0) {
        std::fprintf(stderr, "--threads must be in [0, 4096] (0 = auto)\n");
        usage();
      }
      opt.threads = static_cast<std::size_t>(v);
    } else if (arg == "--emit-partial") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for --emit-partial\n");
        usage();
      }
      opt.emit_partial = argv[++i];
    } else if (arg == "--shard") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for --shard\n");
        usage();
      }
      parse_shard(argv[++i], opt);
    } else if (arg == "--checkpoint") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for --checkpoint\n");
        usage();
      }
      opt.checkpoint = argv[++i];
    } else if (arg == "--checkpoint-every") {
      const double v = need_value("--checkpoint-every");
      if (!(v >= 1.0)) {
        std::fprintf(stderr, "--checkpoint-every wants N >= 1\n");
        usage();
      }
      opt.checkpoint_every = static_cast<std::uint64_t>(v);
    } else if (arg == "--restore") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for --restore\n");
        usage();
      }
      opt.restore = argv[++i];
    } else if (arg == "--store") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for --store\n");
        usage();
      }
      opt.store = argv[++i];
    } else if (fbm::tools::parse_metrics_flag(argc, argv, i, opt.metrics,
                                              usage)) {
      // consumed --metrics / --metrics-every / --metrics-prom
    } else if (arg == "--prefix24") {
      opt.prefix24 = true;
    } else if (arg == "--follow") {
      opt.follow = true;
    } else if (arg == "--json") {
      opt.json = true;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown flag %s\n", arg.c_str());
      usage();
    } else if (opt.path.empty()) {
      opt.path = arg;
    } else {
      usage();
    }
  }
  if (opt.path.empty()) usage();
  if (opt.threads != 1 && opt.links.empty()) {
    std::fprintf(stderr,
                 "--threads sizes the multi-link worker pool; give at least "
                 "one --link\n");
    usage();
  }
  if (opt.shard_count > 1 && opt.emit_partial.empty()) {
    std::fprintf(stderr,
                 "--shard only makes sense with --emit-partial (a fitted "
                 "shard is not a fitted trace)\n");
    usage();
  }
  if (opt.shard_count > 1 && !opt.links.empty()) {
    std::fprintf(stderr,
                 "--shard partitions by flow key and cannot combine with "
                 "--link demux; emit one multi-link partial instead\n");
    usage();
  }
  if (!opt.emit_partial.empty() && opt.follow) {
    std::fprintf(stderr,
                 "--emit-partial needs a finite stream (the end frame seals "
                 "the file); drop --follow\n");
    usage();
  }
  if (!opt.emit_partial.empty() && opt.max_windows > 0) {
    std::fprintf(stderr,
                 "--emit-partial streams every window; drop --max-windows\n");
    usage();
  }
  if (!opt.emit_partial.empty() &&
      (!opt.checkpoint.empty() || !opt.restore.empty() ||
       !opt.store.empty())) {
    std::fprintf(stderr,
                 "--checkpoint/--restore/--store snapshot fitted state; "
                 "--emit-partial defers fitting — they cannot combine\n");
    usage();
  }
  return opt;
}

/// Shard-mode packet filter: keep exactly the packets whose flow key hashes
/// to this shard, so K such processes partition the stream by flow and every
/// flow's packet subsequence survives intact — the property that makes
/// merged partials bit-identical to a single run.
[[nodiscard]] bool shard_keeps(const Options& opt,
                               const fbm::live::LiveConfig& config,
                               const fbm::net::PacketRecord& p) {
  return opt.shard_count <= 1 ||
         fbm::api::flow_shard_of(p, config.analysis.flow_definition(),
                                 opt.shard_count) == opt.shard_index;
}

void print_human(const fbm::live::WindowReport& r, const char* link) {
  const char* mark = "";
  if (r.anomaly.alert) {
    mark = r.anomaly.kind == fbm::live::AlertKind::spike ? "  ALERT spike"
                                                         : "  ALERT drop";
  }
  if (link != nullptr) std::printf("%-10s ", link);
  if (r.forecast.available) {
    std::printf(
        "%6zu %8.1f %8zu %9.1f | %8.2f in [%7.2f, %7.2f] %+6.1fs%s\n",
        r.window_index, r.start_s, r.inputs.flows, r.inputs.lambda,
        r.measured.mean_bps / 1e6, r.forecast.band_low_bps / 1e6,
        r.forecast.band_high_bps / 1e6, r.anomaly.deviation_sigma, mark);
  } else {
    std::printf("%6zu %8.1f %8zu %9.1f | %8.2f (warming up)%s\n",
                r.window_index, r.start_s, r.inputs.flows, r.inputs.lambda,
                r.measured.mean_bps / 1e6, mark);
  }
}

fbm::live::LiveConfig make_live_config(const Options& opt) {
  using namespace fbm;
  live::LiveConfig config;
  config.window_s = opt.window;
  config.stride_s = opt.stride;
  config.band_k_sigma = opt.k_sigma;
  config.forecast_max_order = opt.max_order;
  config.alert_min_consecutive = opt.consecutive;
  config.alert_warmup_windows = opt.warmup;
  config.analysis
      .flow_definition(opt.prefix24 ? api::FlowDefinition::prefix24
                                    : api::FlowDefinition::five_tuple)
      .timeout_s(opt.timeout)
      .delta_s(opt.delta)
      .epsilon(opt.eps);
  return config;
}

/// Drains the source into `push`, with --follow/--idle polling; `done`
/// flips when --max-windows is reached. `idle_tick` runs before each quiet
/// sleep (the engine flushes its demux buffers there, so a stalled stream
/// still delivers buffered windows). `metrics` is ticked every few thousand
/// packets and on every idle poll; in --follow mode each tick also refreshes
/// the window-lag gauge (wall clock minus the newest packet timestamp).
template <typename Push, typename IdleTick>
void drain(fbm::api::TraceSource& source, const Options& opt,
           const std::atomic<bool>& done, fbm::obs::MetricsExporter& metrics,
           Push&& push, IdleTick&& idle_tick) {
  const auto poll = std::chrono::milliseconds(50);
  double idle_s = 0.0;
  std::uint64_t seen = 0;
  double newest_ts = 0.0;
  const auto metrics_tick = [&] {
    if (!metrics.active()) return;
    if (opt.follow && seen > 0 && fbm::obs::enabled()) {
      const double wall_s =
          std::chrono::duration<double>(
              std::chrono::system_clock::now().time_since_epoch())
              .count();
      fbm::obs::live_window_lag_s().set(wall_s - newest_ts);
    }
    metrics.tick();
  };
  while (!done) {
    if (auto p = source.next()) {
      newest_ts = p->timestamp;
      push(*p);
      idle_s = 0.0;
      if ((++seen & 0x0FFFu) == 0) metrics_tick();
      continue;
    }
    if (!opt.follow) break;
    if (opt.idle > 0.0 && idle_s >= opt.idle) break;
    idle_tick();
    metrics_tick();
    std::this_thread::sleep_for(poll);
    idle_s += 0.05;
  }
}

int run_single(const Options& opt) {
  using namespace fbm;
  auto source = api::open_trace(opt.path, opt.follow);
  const live::LiveConfig config = make_live_config(opt);
  live::WindowedEstimator estimator(config);
  obs::MetricsExporter metrics = tools::make_metrics_exporter(opt.metrics);
  tools::MetricsFinishGuard metrics_guard(metrics);

  // Distributed mode: raw window partials stream to the writer instead of
  // being fitted; the shard's trace totals accumulate at the push site
  // (the estimator counts packets but not timestamps) for the end frame.
  std::unique_ptr<agg::PartialWriter> writer;
  trace::TraceSummary shard_summary;
  if (!opt.emit_partial.empty()) {
    writer = std::make_unique<agg::PartialWriter>(
        opt.emit_partial, agg::PartialMeta::from_live(config));
    estimator.set_partial_sink(
        [&](live::WindowPartial&& partial) { writer->add(0, partial); });

    std::atomic<bool> done{false};
    drain(
        *source, opt, done, metrics,
        [&](const net::PacketRecord& p) {
          if (!shard_keeps(opt, config, p)) return;
          if (shard_summary.packets == 0) shard_summary.first_ts = p.timestamp;
          shard_summary.last_ts = p.timestamp;
          ++shard_summary.packets;
          shard_summary.total_bytes += p.size_bytes;
          estimator.push(p);
        },
        [] {});
    estimator.finish();
    if (shard_summary.packets == 0 && opt.shard_count <= 1) {
      std::fprintf(stderr, "error: no packets in %s\n", opt.path.c_str());
      return 1;
    }
    writer->finish({shard_summary, {}});
    std::fprintf(stderr, "wrote %llu window partials to %s\n",
                 static_cast<unsigned long long>(writer->windows_written()),
                 opt.emit_partial.c_str());
    return 0;
  }

  // Durable operations: the report store persists each finished window the
  // moment it is printed; restore rebuilds the estimator from a checkpoint
  // and skips the packets it had already consumed.
  std::unique_ptr<store::StoreWriter> store_writer;
  if (!opt.store.empty()) {
    store_writer = std::make_unique<store::StoreWriter>(opt.store);
  }
  std::uint64_t skip = 0;
  if (!opt.restore.empty()) {
    const ckpt::Checkpoint ck = ckpt::read_checkpoint(opt.restore);
    if (ck.kind != ckpt::CheckpointKind::estimator) {
      std::fprintf(stderr,
                   "error: %s is an engine checkpoint; pass its --link "
                   "set to resume it\n",
                   opt.restore.c_str());
      return 1;
    }
    agg::check_compatible(ck.meta, agg::PartialMeta::from_live(config));
    estimator.restore_state(ck.estimator);
    skip = ck.packets_consumed();
    std::fprintf(stderr, "resuming after %llu reports (%llu packets) from %s\n",
                 static_cast<unsigned long long>(ck.reports_emitted()),
                 static_cast<unsigned long long>(skip), opt.restore.c_str());
  }

  std::atomic<bool> done{false};
  estimator.set_window_sink([&](live::WindowReport&& r) {
    // One push() can close many windows at once (a quiet gap in the
    // stream); stop printing the moment the cap is reached, not just at
    // the next outer-loop check.
    if (done) return;
    if (opt.json) {
      std::printf("%s\n", live::to_jsonl(r).c_str());
    } else {
      print_human(r, nullptr);
    }
    std::fflush(stdout);
    if (store_writer) store_writer->append({0, false, "", std::move(r)});
    if (opt.max_windows > 0 &&
        estimator.counters().windows >= opt.max_windows) {
      done = true;
    }
  });

  // Checkpoints are cut between pushes (never inside the sink — the
  // estimator is mid-mutation there), after the sink has printed and
  // flushed every window the snapshot counts as delivered.
  std::uint64_t last_ckpt = estimator.counters().windows;
  const auto maybe_checkpoint = [&] {
    if (opt.checkpoint.empty() || done) return;
    const std::uint64_t w = estimator.counters().windows;
    if (w - last_ckpt < opt.checkpoint_every) return;
    ckpt::write_checkpoint(opt.checkpoint, agg::PartialMeta::from_live(config),
                           estimator.save_state());
    last_ckpt = w;
  };

  if (!opt.json) {
    std::printf("%6s %8s %8s %9s | %s\n", "window", "t0", "flows",
                "lambda", "measured Mbps vs forecast band");
  }
  std::uint64_t skipped = 0;
  drain(
      *source, opt, done, metrics,
      [&](const net::PacketRecord& p) {
        if (skipped < skip) {
          ++skipped;
          return;
        }
        estimator.push(p);
        maybe_checkpoint();
      },
      [] {});
  if (!done) estimator.finish();

  if (estimator.counters().packets == 0) {
    std::fprintf(stderr, "error: no packets in %s\n", opt.path.c_str());
    return 1;
  }
  if (!opt.json) {
    const auto& c = estimator.counters();
    std::printf("\n%llu windows, %llu packets, %llu flows\n",
                static_cast<unsigned long long>(c.windows),
                static_cast<unsigned long long>(c.packets),
                static_cast<unsigned long long>(c.flows));
  }
  return 0;
}

int run_engine(const Options& opt) {
  using namespace fbm;
  auto source = api::open_trace(opt.path, opt.follow);
  obs::MetricsExporter metrics = tools::make_metrics_exporter(opt.metrics);
  tools::MetricsFinishGuard metrics_guard(metrics);

  engine::EngineConfig config;
  config.mode = engine::EngineMode::live;
  config.live = make_live_config(opt);
  config.threads = opt.threads;

  // The sink runs on pool workers under --threads, possibly until ~Engine
  // joins them — so the state it captures is declared before the engine
  // (destroyed after it). The drain loop polls `done` from the caller.
  std::atomic<bool> done{false};
  // Atomic: pool workers bump it in the report sink while the demux thread
  // reads it for the --max-windows cap and the checkpoint trigger.
  std::atomic<std::uint64_t> windows{0};

  std::unique_ptr<agg::PartialWriter> writer;
  engine::Engine eng(config);
  if (!opt.emit_partial.empty()) {
    // Distributed mode: declare the link set in the meta frame, stream
    // every link's closed windows as window frames, fit nothing.
    std::vector<engine::LinkSpec> specs;
    specs.reserve(opt.links.size());
    for (const auto& text : opt.links) {
      specs.push_back(engine::parse_link_spec(text));
    }
    agg::PartialMeta meta = agg::PartialMeta::from_live(config.live);
    meta.engine = true;
    for (std::size_t i = 0; i < specs.size(); ++i) {
      meta.links.push_back({static_cast<std::uint32_t>(i), specs[i].name});
    }
    writer = std::make_unique<agg::PartialWriter>(opt.emit_partial,
                                                  std::move(meta));
    eng.set_partial_sink([&](engine::LinkId link, const std::string&,
                             live::WindowPartial&& partial) {
      writer->add(static_cast<std::uint32_t>(link), partial);
    });
    for (auto& spec : specs) (void)eng.attach(std::move(spec));

    drain(
        *source, opt, done, metrics,
        [&](const net::PacketRecord& p) { eng.push(p); },
        [&] { eng.flush(); });
    eng.finish();
    if (eng.summary().packets == 0) {
      std::fprintf(stderr, "error: no packets in %s\n", opt.path.c_str());
      return 1;
    }
    agg::PartialTotals totals;
    totals.summary = eng.summary();
    for (const auto& link : eng.links()) {
      totals.links.push_back({static_cast<std::uint32_t>(link.id),
                              link.counters.packets, link.counters.bytes});
    }
    writer->finish(totals);
    std::fprintf(stderr, "wrote %llu window partials for %zu links to %s\n",
                 static_cast<unsigned long long>(writer->windows_written()),
                 opt.links.size(), opt.emit_partial.c_str());
    return 0;
  }
  // The engine's config identity for checkpoints: the live knobs plus the
  // link set, so a restore under different links or knobs is refused with a
  // field-naming diagnostic.
  std::vector<engine::LinkSpec> specs;
  specs.reserve(opt.links.size());
  for (const auto& text : opt.links) {
    specs.push_back(engine::parse_link_spec(text));
  }
  agg::PartialMeta ckpt_meta = agg::PartialMeta::from_live(config.live);
  ckpt_meta.engine = true;
  for (std::size_t i = 0; i < specs.size(); ++i) {
    ckpt_meta.links.push_back({static_cast<std::uint32_t>(i), specs[i].name});
  }
  for (auto& spec : specs) (void)eng.attach(std::move(spec));

  std::unique_ptr<store::StoreWriter> store_writer;
  if (!opt.store.empty()) {
    store_writer = std::make_unique<store::StoreWriter>(opt.store);
  }
  std::uint64_t skip = 0;
  if (!opt.restore.empty()) {
    const ckpt::Checkpoint ck = ckpt::read_checkpoint(opt.restore);
    if (ck.kind != ckpt::CheckpointKind::engine) {
      std::fprintf(stderr,
                   "error: %s is a single-estimator checkpoint; drop the "
                   "--link flags to resume it\n",
                   opt.restore.c_str());
      return 1;
    }
    agg::check_compatible(ck.meta, ckpt_meta);
    eng.restore_state(ck.engine);
    skip = ck.packets_consumed();
    std::fprintf(stderr, "resuming after %llu reports (%llu packets) from %s\n",
                 static_cast<unsigned long long>(ck.reports_emitted()),
                 static_cast<unsigned long long>(skip), opt.restore.c_str());
  }

  eng.set_report_sink([&](engine::LinkReport&& r) {
    if (done) return;
    if (opt.json) {
      std::printf("%s\n", engine::to_jsonl(r).c_str());
    } else {
      print_human(*r.window, r.name.c_str());
    }
    std::fflush(stdout);
    if (store_writer) {
      store_writer->append({static_cast<std::uint32_t>(r.link), true, r.name,
                            std::move(*r.window)});
    }
    ++windows;
    if (opt.max_windows > 0 && windows >= opt.max_windows) done = true;
  });

  // Between-push checkpoint trigger; `windows` is atomic because pool
  // workers bump it in the sink while the demux thread reads it here.
  // save_state() quiesces the pool, so the snapshot is a consistent cut.
  std::uint64_t last_ckpt = windows.load();
  const auto maybe_checkpoint = [&] {
    if (opt.checkpoint.empty() || done) return;
    const std::uint64_t w = windows.load();
    if (w - last_ckpt < opt.checkpoint_every) return;
    ckpt::write_checkpoint(opt.checkpoint, ckpt_meta, eng.save_state());
    last_ckpt = w;
  };

  if (!opt.json) {
    std::printf("%-10s %6s %8s %8s %9s | %s\n", "link", "window", "t0",
                "flows", "lambda", "measured Mbps vs forecast band");
  }
  std::uint64_t skipped = 0;
  drain(
      *source, opt, done, metrics,
      [&](const net::PacketRecord& p) {
        if (skipped < skip) {
          ++skipped;
          return;
        }
        eng.push(p);
        maybe_checkpoint();
      },
      [&] { eng.flush(); });
  // Unconditional: when --max-windows tripped, finish() joins the pool
  // workers (the sink drops further reports via `done`) so the footer below
  // reads the counters race-free.
  eng.finish();

  if (eng.summary().packets == 0) {
    std::fprintf(stderr, "error: no packets in %s\n", opt.path.c_str());
    return 1;
  }
  if (!opt.json) {
    std::printf("\n%llu windows over %zu links, %llu packets\n",
                static_cast<unsigned long long>(windows), opt.links.size(),
                static_cast<unsigned long long>(eng.summary().packets));
    for (const auto& link : eng.links()) {
      std::printf("  %-10s %llu packets, %llu windows\n", link.name.c_str(),
                  static_cast<unsigned long long>(link.counters.packets),
                  static_cast<unsigned long long>(link.counters.reports));
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = parse_args(argc, argv);
  try {
    return opt.links.empty() ? run_single(opt) : run_engine(opt);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
