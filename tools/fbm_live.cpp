// fbm_live — continuous sliding-window monitoring of a packet trace.
//
// Usage:
//   fbm_live <trace.fbmt|.pcap|.csv> [--window S] [--stride S] [--timeout S]
//            [--delta S] [--prefix24] [--eps P] [--k-sigma K] [--max-order M]
//            [--consecutive N] [--follow] [--idle S] [--max-windows N]
//            [--link NAME=PREFIX[,PREFIX...] ...] [--threads N] [--json]
//
// Streams the trace through live::WindowedEstimator: per sliding window the
// three model parameters, measured vs model rate, fitted shot, capacity
// plan, the rolling next-window forecast and the anomaly verdict. --json
// emits one JSON object per window (JSONL, schema in
// src/live/window_report.hpp); the default is a human-readable table with
// ALERT markers. --follow keeps polling the file for appended records
// (tail -f; .fbmt/.pcap only), stopping after --idle seconds without new
// data (default: forever). --max-windows stops after N reports either way.
//
// --link (repeatable) switches to the multi-link engine: the stream is
// demuxed to one session per link (longest-prefix match for overlapping
// claims; NAME=all or NAME=* for a match-all aggregate) and every window
// report carries its link — a "link" name column, or a leading "link" JSONL
// field (schema pinned by the engine-smoke CI job). --threads N spreads the
// sessions over a worker pool.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "api/api.hpp"
#include "live/live.hpp"

namespace {

struct Options {
  std::string path;
  double window = 60.0;
  double stride = 0.0;  // 0 = window
  double timeout = 60.0;
  double delta = fbm::measure::kPaperDelta;
  bool prefix24 = false;
  double eps = 0.01;
  double k_sigma = 3.0;
  std::size_t max_order = 8;
  std::size_t consecutive = 1;
  bool follow = false;
  double idle = 0.0;  // 0 = wait forever
  std::uint64_t max_windows = 0;  // 0 = unlimited
  std::vector<std::string> links;  // empty = single-link estimator
  std::size_t threads = 1;
  bool json = false;
};

[[noreturn]] void usage() {
  std::fprintf(
      stderr,
      "usage: fbm_live <trace.fbmt|.pcap|.csv> [--window S] [--stride S] "
      "[--timeout S] [--delta S] [--prefix24] [--eps P] [--k-sigma K] "
      "[--max-order M] [--consecutive N] [--follow] [--idle S] "
      "[--max-windows N] [--link NAME=PREFIX[,PREFIX...]] [--threads N] "
      "[--json]\n");
  std::exit(2);
}

Options parse_args(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto need_value = [&](const char* flag) -> double {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", flag);
        usage();
      }
      return std::atof(argv[++i]);
    };
    if (arg == "--window") {
      opt.window = need_value("--window");
    } else if (arg == "--stride") {
      opt.stride = need_value("--stride");
    } else if (arg == "--timeout") {
      opt.timeout = need_value("--timeout");
    } else if (arg == "--delta") {
      opt.delta = need_value("--delta");
    } else if (arg == "--eps") {
      opt.eps = need_value("--eps");
    } else if (arg == "--k-sigma") {
      opt.k_sigma = need_value("--k-sigma");
    } else if (arg == "--max-order") {
      opt.max_order = static_cast<std::size_t>(need_value("--max-order"));
    } else if (arg == "--consecutive") {
      opt.consecutive = static_cast<std::size_t>(need_value("--consecutive"));
    } else if (arg == "--idle") {
      opt.idle = need_value("--idle");
    } else if (arg == "--max-windows") {
      opt.max_windows =
          static_cast<std::uint64_t>(need_value("--max-windows"));
    } else if (arg == "--link") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for --link\n");
        usage();
      }
      opt.links.emplace_back(argv[++i]);
    } else if (arg == "--threads") {
      const double v = need_value("--threads");
      if (!(v >= 1.0) || v > 4096.0) {
        std::fprintf(stderr, "--threads must be in [1, 4096]\n");
        usage();
      }
      opt.threads = static_cast<std::size_t>(v);
    } else if (arg == "--prefix24") {
      opt.prefix24 = true;
    } else if (arg == "--follow") {
      opt.follow = true;
    } else if (arg == "--json") {
      opt.json = true;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown flag %s\n", arg.c_str());
      usage();
    } else if (opt.path.empty()) {
      opt.path = arg;
    } else {
      usage();
    }
  }
  if (opt.path.empty()) usage();
  if (opt.threads > 1 && opt.links.empty()) {
    std::fprintf(stderr,
                 "--threads sizes the multi-link worker pool; give at least "
                 "one --link\n");
    usage();
  }
  return opt;
}

void print_human(const fbm::live::WindowReport& r, const char* link) {
  const char* mark = "";
  if (r.anomaly.alert) {
    mark = r.anomaly.kind == fbm::live::AlertKind::spike ? "  ALERT spike"
                                                         : "  ALERT drop";
  }
  if (link != nullptr) std::printf("%-10s ", link);
  if (r.forecast.available) {
    std::printf(
        "%6zu %8.1f %8zu %9.1f | %8.2f in [%7.2f, %7.2f] %+6.1fs%s\n",
        r.window_index, r.start_s, r.inputs.flows, r.inputs.lambda,
        r.measured.mean_bps / 1e6, r.forecast.band_low_bps / 1e6,
        r.forecast.band_high_bps / 1e6, r.anomaly.deviation_sigma, mark);
  } else {
    std::printf("%6zu %8.1f %8zu %9.1f | %8.2f (warming up)%s\n",
                r.window_index, r.start_s, r.inputs.flows, r.inputs.lambda,
                r.measured.mean_bps / 1e6, mark);
  }
}

fbm::live::LiveConfig make_live_config(const Options& opt) {
  using namespace fbm;
  live::LiveConfig config;
  config.window_s = opt.window;
  config.stride_s = opt.stride;
  config.band_k_sigma = opt.k_sigma;
  config.forecast_max_order = opt.max_order;
  config.alert_min_consecutive = opt.consecutive;
  config.analysis
      .flow_definition(opt.prefix24 ? api::FlowDefinition::prefix24
                                    : api::FlowDefinition::five_tuple)
      .timeout_s(opt.timeout)
      .delta_s(opt.delta)
      .epsilon(opt.eps);
  return config;
}

/// Drains the source into `push`, with --follow/--idle polling; `done`
/// flips when --max-windows is reached. `idle_tick` runs before each quiet
/// sleep (the engine flushes its demux buffers there, so a stalled stream
/// still delivers buffered windows).
template <typename Push, typename IdleTick>
void drain(fbm::api::TraceSource& source, const Options& opt,
           const std::atomic<bool>& done, Push&& push, IdleTick&& idle_tick) {
  const auto poll = std::chrono::milliseconds(50);
  double idle_s = 0.0;
  while (!done) {
    if (auto p = source.next()) {
      push(*p);
      idle_s = 0.0;
      continue;
    }
    if (!opt.follow) break;
    if (opt.idle > 0.0 && idle_s >= opt.idle) break;
    idle_tick();
    std::this_thread::sleep_for(poll);
    idle_s += 0.05;
  }
}

int run_single(const Options& opt) {
  using namespace fbm;
  auto source = api::open_trace(opt.path, opt.follow);
  live::WindowedEstimator estimator(make_live_config(opt));

  std::atomic<bool> done{false};
  estimator.set_window_sink([&](live::WindowReport&& r) {
    // One push() can close many windows at once (a quiet gap in the
    // stream); stop printing the moment the cap is reached, not just at
    // the next outer-loop check.
    if (done) return;
    if (opt.json) {
      std::printf("%s\n", live::to_jsonl(r).c_str());
    } else {
      print_human(r, nullptr);
    }
    std::fflush(stdout);
    if (opt.max_windows > 0 &&
        estimator.counters().windows >= opt.max_windows) {
      done = true;
    }
  });

  if (!opt.json) {
    std::printf("%6s %8s %8s %9s | %s\n", "window", "t0", "flows",
                "lambda", "measured Mbps vs forecast band");
  }
  drain(
      *source, opt, done,
      [&](const net::PacketRecord& p) { estimator.push(p); }, [] {});
  if (!done) estimator.finish();

  if (!opt.json) {
    const auto& c = estimator.counters();
    std::printf("\n%llu windows, %llu packets, %llu flows\n",
                static_cast<unsigned long long>(c.windows),
                static_cast<unsigned long long>(c.packets),
                static_cast<unsigned long long>(c.flows));
  }
  return 0;
}

int run_engine(const Options& opt) {
  using namespace fbm;
  auto source = api::open_trace(opt.path, opt.follow);

  engine::EngineConfig config;
  config.mode = engine::EngineMode::live;
  config.live = make_live_config(opt);
  config.threads = opt.threads;

  // The sink runs on pool workers under --threads, possibly until ~Engine
  // joins them — so the state it captures is declared before the engine
  // (destroyed after it). The drain loop polls `done` from the caller.
  std::atomic<bool> done{false};
  std::uint64_t windows = 0;

  engine::Engine eng(config);
  for (const auto& text : opt.links) {
    (void)eng.attach(engine::parse_link_spec(text));
  }
  eng.set_report_sink([&](engine::LinkReport&& r) {
    if (done) return;
    if (opt.json) {
      std::printf("%s\n", engine::to_jsonl(r).c_str());
    } else {
      print_human(*r.window, r.name.c_str());
    }
    std::fflush(stdout);
    ++windows;
    if (opt.max_windows > 0 && windows >= opt.max_windows) done = true;
  });

  if (!opt.json) {
    std::printf("%-10s %6s %8s %8s %9s | %s\n", "link", "window", "t0",
                "flows", "lambda", "measured Mbps vs forecast band");
  }
  drain(
      *source, opt, done, [&](const net::PacketRecord& p) { eng.push(p); },
      [&] { eng.flush(); });
  // Unconditional: when --max-windows tripped, finish() joins the pool
  // workers (the sink drops further reports via `done`) so the footer below
  // reads the counters race-free.
  eng.finish();

  if (!opt.json) {
    std::printf("\n%llu windows over %zu links, %llu packets\n",
                static_cast<unsigned long long>(windows), opt.links.size(),
                static_cast<unsigned long long>(eng.summary().packets));
    for (const auto& link : eng.links()) {
      std::printf("  %-10s %llu packets, %llu windows\n", link.name.c_str(),
                  static_cast<unsigned long long>(link.counters.packets),
                  static_cast<unsigned long long>(link.counters.reports));
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = parse_args(argc, argv);
  try {
    return opt.links.empty() ? run_single(opt) : run_engine(opt);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
