// fbm_live — continuous sliding-window monitoring of a packet trace.
//
// Usage:
//   fbm_live <trace.fbmt|.pcap|.csv> [--window S] [--stride S] [--timeout S]
//            [--delta S] [--prefix24] [--eps P] [--k-sigma K] [--max-order M]
//            [--consecutive N] [--follow] [--idle S] [--max-windows N]
//            [--json]
//
// Streams the trace through live::WindowedEstimator: per sliding window the
// three model parameters, measured vs model rate, fitted shot, capacity
// plan, the rolling next-window forecast and the anomaly verdict. --json
// emits one JSON object per window (JSONL, schema in
// src/live/window_report.hpp); the default is a human-readable table with
// ALERT markers. --follow keeps polling the file for appended records
// (tail -f; .fbmt/.pcap only), stopping after --idle seconds without new
// data (default: forever). --max-windows stops after N reports either way.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>

#include "api/api.hpp"
#include "live/live.hpp"

namespace {

struct Options {
  std::string path;
  double window = 60.0;
  double stride = 0.0;  // 0 = window
  double timeout = 60.0;
  double delta = fbm::measure::kPaperDelta;
  bool prefix24 = false;
  double eps = 0.01;
  double k_sigma = 3.0;
  std::size_t max_order = 8;
  std::size_t consecutive = 1;
  bool follow = false;
  double idle = 0.0;  // 0 = wait forever
  std::uint64_t max_windows = 0;  // 0 = unlimited
  bool json = false;
};

[[noreturn]] void usage() {
  std::fprintf(
      stderr,
      "usage: fbm_live <trace.fbmt|.pcap|.csv> [--window S] [--stride S] "
      "[--timeout S] [--delta S] [--prefix24] [--eps P] [--k-sigma K] "
      "[--max-order M] [--consecutive N] [--follow] [--idle S] "
      "[--max-windows N] [--json]\n");
  std::exit(2);
}

Options parse_args(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto need_value = [&](const char* flag) -> double {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", flag);
        usage();
      }
      return std::atof(argv[++i]);
    };
    if (arg == "--window") {
      opt.window = need_value("--window");
    } else if (arg == "--stride") {
      opt.stride = need_value("--stride");
    } else if (arg == "--timeout") {
      opt.timeout = need_value("--timeout");
    } else if (arg == "--delta") {
      opt.delta = need_value("--delta");
    } else if (arg == "--eps") {
      opt.eps = need_value("--eps");
    } else if (arg == "--k-sigma") {
      opt.k_sigma = need_value("--k-sigma");
    } else if (arg == "--max-order") {
      opt.max_order = static_cast<std::size_t>(need_value("--max-order"));
    } else if (arg == "--consecutive") {
      opt.consecutive = static_cast<std::size_t>(need_value("--consecutive"));
    } else if (arg == "--idle") {
      opt.idle = need_value("--idle");
    } else if (arg == "--max-windows") {
      opt.max_windows =
          static_cast<std::uint64_t>(need_value("--max-windows"));
    } else if (arg == "--prefix24") {
      opt.prefix24 = true;
    } else if (arg == "--follow") {
      opt.follow = true;
    } else if (arg == "--json") {
      opt.json = true;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown flag %s\n", arg.c_str());
      usage();
    } else if (opt.path.empty()) {
      opt.path = arg;
    } else {
      usage();
    }
  }
  if (opt.path.empty()) usage();
  return opt;
}

void print_human(const fbm::live::WindowReport& r) {
  const char* mark = "";
  if (r.anomaly.alert) {
    mark = r.anomaly.kind == fbm::live::AlertKind::spike ? "  ALERT spike"
                                                         : "  ALERT drop";
  }
  if (r.forecast.available) {
    std::printf(
        "%6zu %8.1f %8zu %9.1f | %8.2f in [%7.2f, %7.2f] %+6.1fs%s\n",
        r.window_index, r.start_s, r.inputs.flows, r.inputs.lambda,
        r.measured.mean_bps / 1e6, r.forecast.band_low_bps / 1e6,
        r.forecast.band_high_bps / 1e6, r.anomaly.deviation_sigma, mark);
  } else {
    std::printf("%6zu %8.1f %8zu %9.1f | %8.2f (warming up)%s\n",
                r.window_index, r.start_s, r.inputs.flows, r.inputs.lambda,
                r.measured.mean_bps / 1e6, mark);
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace fbm;
  const Options opt = parse_args(argc, argv);

  live::LiveConfig config;
  config.window_s = opt.window;
  config.stride_s = opt.stride;
  config.band_k_sigma = opt.k_sigma;
  config.forecast_max_order = opt.max_order;
  config.alert_min_consecutive = opt.consecutive;
  config.analysis
      .flow_definition(opt.prefix24 ? api::FlowDefinition::prefix24
                                    : api::FlowDefinition::five_tuple)
      .timeout_s(opt.timeout)
      .delta_s(opt.delta)
      .epsilon(opt.eps);

  try {
    auto source = api::open_trace(opt.path, opt.follow);
    live::WindowedEstimator estimator(config);

    bool done = false;
    estimator.set_window_sink([&](live::WindowReport&& r) {
      // One push() can close many windows at once (a quiet gap in the
      // stream); stop printing the moment the cap is reached, not just at
      // the next outer-loop check.
      if (done) return;
      if (opt.json) {
        std::printf("%s\n", live::to_jsonl(r).c_str());
      } else {
        print_human(r);
      }
      std::fflush(stdout);
      if (opt.max_windows > 0 &&
          estimator.counters().windows >= opt.max_windows) {
        done = true;
      }
    });

    if (!opt.json) {
      std::printf("%6s %8s %8s %9s | %s\n", "window", "t0", "flows",
                  "lambda", "measured Mbps vs forecast band");
    }

    const auto poll = std::chrono::milliseconds(50);
    double idle_s = 0.0;
    while (!done) {
      if (auto p = source->next()) {
        estimator.push(*p);
        idle_s = 0.0;
        continue;
      }
      if (!opt.follow) break;
      if (opt.idle > 0.0 && idle_s >= opt.idle) break;
      std::this_thread::sleep_for(poll);
      idle_s += 0.05;
    }
    if (!done) estimator.finish();

    if (!opt.json) {
      const auto& c = estimator.counters();
      std::printf("\n%llu windows, %llu packets, %llu flows\n",
                  static_cast<unsigned long long>(c.windows),
                  static_cast<unsigned long long>(c.packets),
                  static_cast<unsigned long long>(c.flows));
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
