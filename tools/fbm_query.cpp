// fbm_query — range scans, downsampling and retention over a report store.
//
// Usage:
//   fbm_query <store.fbms> [--link NAME] [--from S] [--to S] [--no-dedup]
//             [--downsample S] [--agg mean|max] [--trim-before S] [--stats]
//
// The store (src/store/report_store.hpp) is the append-only file fbm_live
// --store / fbm_analyze --store write. The default query dumps the matching
// records as JSONL, each line byte-identical to what fbm_live printed when
// the window closed (the durability CI gate cmp's the two); --link, --from
// and --to narrow the scan (window start in [from, to)).
//
// Scans dedup by (link, window index), last record wins, so a store holding
// a killed run's prefix plus a resumed run's re-appends queries identically
// to an uninterrupted run's store. --no-dedup audits the raw append stream.
//
// --downsample B coarsens the scan to one line per link per B-second bucket
// ({"link": .., "bucket_start_s": .., "windows": n, "mean_bps": ..,
// "peak_capacity_bps": .., "packets": n, "bytes": n, "alerts": n}) — --agg
// picks the rate statistic (mean of window means, or their max).
//
// --trim-before S drops records with window start < S (retention), through
// a temp file + atomic rename. --stats prints a one-object summary instead
// of records (including whether the file ends in a torn frame).
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/json_writer.hpp"
#include "metrics_cli.hpp"
#include "store/report_store.hpp"

namespace {

struct Options {
  std::string path;
  std::optional<std::string> link;
  double from = -std::numeric_limits<double>::infinity();
  double to = std::numeric_limits<double>::infinity();
  bool dedup = true;
  double downsample = 0.0;  // 0 = raw records
  bool agg_max = false;     // false = mean
  double trim_before = std::numeric_limits<double>::quiet_NaN();
  bool stats = false;
  fbm::tools::MetricsOptions metrics;
};

[[noreturn]] void usage() {
  std::fprintf(stderr,
               "usage: fbm_query <store.fbms> [--link NAME] [--from S] "
               "[--to S] [--no-dedup] [--downsample S] [--agg mean|max] "
               "[--trim-before S] [--stats] [--metrics FILE] "
               "[--metrics-every S] [--metrics-prom FILE]\n");
  std::exit(2);
}

Options parse_args(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto need_value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", flag);
        usage();
      }
      return argv[++i];
    };
    if (arg == "--link") {
      opt.link = std::string(need_value("--link"));
    } else if (arg == "--from") {
      opt.from = std::atof(need_value("--from"));
    } else if (arg == "--to") {
      opt.to = std::atof(need_value("--to"));
    } else if (arg == "--no-dedup") {
      opt.dedup = false;
    } else if (arg == "--downsample") {
      opt.downsample = std::atof(need_value("--downsample"));
      if (!(opt.downsample > 0.0)) {
        std::fprintf(stderr, "--downsample wants a bucket width > 0\n");
        usage();
      }
    } else if (arg == "--agg") {
      const std::string v = need_value("--agg");
      if (v == "max") {
        opt.agg_max = true;
      } else if (v == "mean") {
        opt.agg_max = false;
      } else {
        std::fprintf(stderr, "--agg wants mean or max, got \"%s\"\n",
                     v.c_str());
        usage();
      }
    } else if (arg == "--trim-before") {
      opt.trim_before = std::atof(need_value("--trim-before"));
    } else if (fbm::tools::parse_metrics_flag(argc, argv, i, opt.metrics,
                                              usage)) {
      // consumed --metrics / --metrics-every / --metrics-prom
    } else if (arg == "--stats") {
      opt.stats = true;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown flag %s\n", arg.c_str());
      usage();
    } else if (opt.path.empty()) {
      opt.path = arg;
    } else {
      usage();
    }
  }
  if (opt.path.empty()) usage();
  return opt;
}

void print_stats(const fbm::store::StoreReader& reader) {
  using fbm::core::JsonWriter;
  std::map<std::string, std::uint64_t> links;
  double first = std::numeric_limits<double>::infinity();
  double last = -std::numeric_limits<double>::infinity();
  for (const auto& r : reader.records()) {
    ++links[r.link_name];
    first = std::min(first, r.report.start_s);
    last = std::max(last, r.report.start_s);
  }
  JsonWriter w(JsonWriter::Style::compact);
  w.begin_object();
  w.field("records", static_cast<std::uint64_t>(reader.records().size()));
  w.field("links", static_cast<std::uint64_t>(links.size()));
  if (!reader.records().empty()) {
    w.field("first_start_s", first);
    w.field("last_start_s", last);
  }
  w.field("torn_tail", reader.torn_tail());
  w.begin_array("per_link");
  for (const auto& [name, count] : links) {
    fbm::core::JsonWriter e(JsonWriter::Style::compact);
    e.begin_object();
    e.field("link", name);
    e.field("records", count);
    e.end_object();
    w.raw_element(std::move(e).str());
  }
  w.end_array();
  w.end_object();
  std::printf("%s\n", std::move(w).str().c_str());
}

/// One per-link, per-bucket aggregate of the scanned windows.
struct Bucket {
  std::uint64_t windows = 0;
  double rate_acc = 0.0;  ///< sum (mean) or running max of window mean_bps
  double peak_capacity = 0.0;
  std::uint64_t packets = 0;
  std::uint64_t bytes = 0;
  std::uint64_t alerts = 0;
};

void print_downsampled(const std::vector<fbm::store::StoredReport>& records,
                       const Options& opt) {
  using fbm::core::JsonWriter;
  // Keyed by (link name, bucket start); std::map gives sorted output.
  std::map<std::pair<std::string, double>, Bucket> buckets;
  for (const auto& r : records) {
    const double start =
        std::floor(r.report.start_s / opt.downsample) * opt.downsample;
    Bucket& b = buckets[{r.link_name, start}];
    ++b.windows;
    const double rate = r.report.measured.mean_bps;
    b.rate_acc = opt.agg_max ? std::max(b.rate_acc, rate) : b.rate_acc + rate;
    b.peak_capacity = std::max(b.peak_capacity, r.report.plan.capacity_bps);
    b.packets += r.report.packets;
    b.bytes += r.report.bytes;
    b.alerts += r.report.anomaly.alert ? 1 : 0;
  }
  for (const auto& [key, b] : buckets) {
    JsonWriter w(JsonWriter::Style::compact);
    w.begin_object();
    if (!key.first.empty()) w.field("link", key.first);
    w.field("bucket_start_s", key.second);
    w.field("windows", b.windows);
    w.field("mean_bps", opt.agg_max
                            ? b.rate_acc
                            : b.rate_acc / static_cast<double>(b.windows));
    w.field("peak_capacity_bps", b.peak_capacity);
    w.field("packets", b.packets);
    w.field("bytes", b.bytes);
    w.field("alerts", b.alerts);
    w.end_object();
    std::printf("%s\n", std::move(w).str().c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = parse_args(argc, argv);
  fbm::obs::MetricsExporter metrics =
      fbm::tools::make_metrics_exporter(opt.metrics);
  fbm::tools::MetricsFinishGuard metrics_guard(metrics);
  try {
    if (!std::isnan(opt.trim_before)) {
      const std::uint64_t dropped =
          fbm::store::trim_store(opt.path, opt.trim_before);
      std::fprintf(stderr, "trimmed %llu records before %gs from %s\n",
                   static_cast<unsigned long long>(dropped), opt.trim_before,
                   opt.path.c_str());
      return 0;
    }

    const fbm::store::StoreReader reader(opt.path);
    if (opt.stats) {
      print_stats(reader);
      return 0;
    }
    fbm::store::ScanOptions scan;
    scan.link = opt.link;
    scan.from_s = opt.from;
    scan.to_s = opt.to;
    scan.dedup = opt.dedup;
    const auto records = reader.scan(scan);
    if (opt.downsample > 0.0) {
      print_downsampled(records, opt);
    } else {
      for (const auto& r : records) {
        std::printf("%s\n", r.jsonl().c_str());
      }
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
