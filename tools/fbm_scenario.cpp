// fbm_scenario — run a scenario end to end: generate the regime-switching
// stream, push it through live analysis (single estimator or multi-link
// engine), score the monitor's alerts against the injected ground truth,
// and emit the precision/recall/latency report.
//
// Usage:
//   fbm_scenario <scenario.scn>
//     [--window S] [--stride S] [--timeout S] [--delta S] [--prefix24]
//     [--eps P] [--k-sigma K] [--max-order M] [--consecutive N] [--warmup N]
//     [--link NAME=PREFIX[,...]]... [--threads N] [--batch N]
//     [--json FILE] [--report FILE] [--trace FILE] [--truth FILE]
//     [--min-precision P] [--min-recall R]
//     [--metrics FILE] [--metrics-every N] [--metrics-prom FILE]
//
// The score JSON document (scenario/score.hpp schema) goes to stdout, or
// to --json FILE with a one-line human summary on stdout instead.
// --link switches to engine live mode (repeatable; truth events carrying
// link names are matched against these). --min-precision/--min-recall turn
// the run into a gate: exit 1 when the score falls below either floor —
// the scenario-smoke CI job runs the bundled scenarios exactly this way.
// --trace/--truth additionally write the replayable .fbmt trace and the
// truth log, byte-identical to what fbm_trace_gen --scenario produces.
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "engine/engine.hpp"
#include "live/live.hpp"
#include "obs/catalog.hpp"
#include "scenario/score.hpp"
#include "scenario/source.hpp"
#include "scenario/spec.hpp"
#include "scenario/truth.hpp"
#include "trace/trace_format.hpp"
#include "metrics_cli.hpp"

namespace {

[[noreturn]] void usage() {
  std::fprintf(
      stderr,
      "usage: fbm_scenario <scenario.scn> [--window S] [--stride S] "
      "[--timeout S] [--delta S] [--prefix24] [--eps P] [--k-sigma K] "
      "[--max-order M] [--consecutive N] [--warmup N] "
      "[--link NAME=PREFIX[,...]]... "
      "[--threads N] [--batch N] [--json FILE] [--report FILE] "
      "[--trace FILE] [--truth FILE] [--min-precision P] [--min-recall R] "
      "[--metrics FILE] [--metrics-every N] [--metrics-prom FILE]\n");
  std::exit(2);
}

struct Options {
  std::string spec_path;
  double window = 0.0;   // 0 = take the spec's suggestion
  double stride = -1.0;  // <0 = take the spec's suggestion
  double timeout = 1.0;
  double delta = 0.1;
  bool prefix24 = false;
  double eps = 0.01;
  double k_sigma = 3.0;
  std::size_t max_order = 8;
  std::size_t consecutive = 1;
  std::size_t warmup = 8;  ///< windows unjudged while the forecaster settles
  std::vector<std::string> links;  // empty = single estimator
  std::size_t threads = 1;
  std::size_t batch = 1024;
  std::string json_path;    // empty = JSON to stdout
  std::string report_path;  // window JSONL dump
  std::string trace_path;   // replayable .fbmt
  std::string truth_path;   // truth log
  double min_precision = -1.0;  // <0 = no gate
  double min_recall = -1.0;
  fbm::tools::MetricsOptions metrics;
};

Options parse_args(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto need_value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", flag);
        usage();
      }
      return argv[++i];
    };
    if (arg == "--window") {
      opt.window = std::atof(need_value("--window"));
    } else if (arg == "--stride") {
      opt.stride = std::atof(need_value("--stride"));
    } else if (arg == "--timeout") {
      opt.timeout = std::atof(need_value("--timeout"));
    } else if (arg == "--delta") {
      opt.delta = std::atof(need_value("--delta"));
    } else if (arg == "--prefix24") {
      opt.prefix24 = true;
    } else if (arg == "--eps") {
      opt.eps = std::atof(need_value("--eps"));
    } else if (arg == "--k-sigma") {
      opt.k_sigma = std::atof(need_value("--k-sigma"));
    } else if (arg == "--max-order") {
      opt.max_order = static_cast<std::size_t>(
          std::strtoull(need_value("--max-order"), nullptr, 10));
    } else if (arg == "--consecutive") {
      opt.consecutive = static_cast<std::size_t>(
          std::strtoull(need_value("--consecutive"), nullptr, 10));
    } else if (arg == "--warmup") {
      opt.warmup = static_cast<std::size_t>(
          std::strtoull(need_value("--warmup"), nullptr, 10));
    } else if (arg == "--link") {
      opt.links.emplace_back(need_value("--link"));
    } else if (arg == "--threads") {
      opt.threads = static_cast<std::size_t>(
          std::strtoull(need_value("--threads"), nullptr, 10));
    } else if (arg == "--batch") {
      opt.batch = static_cast<std::size_t>(
          std::strtoull(need_value("--batch"), nullptr, 10));
      if (opt.batch == 0) usage();
    } else if (arg == "--json") {
      opt.json_path = need_value("--json");
    } else if (arg == "--report") {
      opt.report_path = need_value("--report");
    } else if (arg == "--trace") {
      opt.trace_path = need_value("--trace");
    } else if (arg == "--truth") {
      opt.truth_path = need_value("--truth");
    } else if (arg == "--min-precision") {
      opt.min_precision = std::atof(need_value("--min-precision"));
    } else if (arg == "--min-recall") {
      opt.min_recall = std::atof(need_value("--min-recall"));
    } else if (fbm::tools::parse_metrics_flag(argc, argv, i, opt.metrics,
                                              usage)) {
      // handled
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown flag %s\n", arg.c_str());
      usage();
    } else if (opt.spec_path.empty()) {
      opt.spec_path = arg;
    } else {
      usage();
    }
  }
  if (opt.spec_path.empty()) usage();
  return opt;
}

fbm::live::LiveConfig make_live_config(const Options& opt,
                                       const fbm::scenario::ScenarioSpec&
                                           spec) {
  using namespace fbm;
  live::LiveConfig config;
  config.window_s = opt.window > 0.0 ? opt.window : spec.window_s;
  config.stride_s = opt.stride >= 0.0 ? opt.stride : spec.stride_s;
  config.band_k_sigma = opt.k_sigma;
  config.forecast_max_order = opt.max_order;
  config.alert_min_consecutive = opt.consecutive;
  config.alert_warmup_windows = opt.warmup;
  config.analysis
      .flow_definition(opt.prefix24 ? api::FlowDefinition::prefix24
                                    : api::FlowDefinition::five_tuple)
      .timeout_s(opt.timeout)
      .delta_s(opt.delta)
      .epsilon(opt.eps);
  config.validate();
  return config;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace fbm;
  const Options opt = parse_args(argc, argv);
  try {
    const scenario::ScenarioSpec spec =
        scenario::load_scenario(opt.spec_path);
    const scenario::TruthLog truth = scenario::derive_truth(spec);
    const live::LiveConfig config = make_live_config(opt, spec);

    obs::MetricsExporter metrics = tools::make_metrics_exporter(opt.metrics);
    tools::MetricsFinishGuard metrics_guard(metrics);
    for (const auto& e : truth.events) {
      obs::scenario_events(std::string(live::to_string(e.kind))).add(1);
    }

    if (!opt.truth_path.empty()) {
      scenario::write_truth_file(opt.truth_path, truth);
    }
    std::unique_ptr<trace::TraceWriter> trace_out;
    if (!opt.trace_path.empty()) {
      trace_out = std::make_unique<trace::TraceWriter>(opt.trace_path);
    }
    std::unique_ptr<std::ofstream> report_out;
    if (!opt.report_path.empty()) {
      report_out = std::make_unique<std::ofstream>(opt.report_path,
                                                   std::ios::trunc);
      if (!*report_out) {
        std::fprintf(stderr, "error: cannot open %s\n",
                     opt.report_path.c_str());
        return 1;
      }
    }

    scenario::ScenarioTraceSource source(spec);
    std::vector<scenario::ObservedWindow> observed;
    std::uint64_t packets = 0;

    obs::Histogram& gen_stage =
        obs::stage_seconds(obs::kStageScenarioGen);
    const auto drain = [&](auto&& push_batch) {
      net::PacketBatch batch;
      while (true) {
        std::size_t n = 0;
        {
          obs::StageSpan span(gen_stage);
          n = source.next_batch(batch, opt.batch);
        }
        if (n == 0) break;
        packets += n;
        obs::scenario_packets().add(n);
        if (trace_out) {
          for (std::size_t i = 0; i < n; ++i) {
            trace_out->append(batch.record(i));
          }
        }
        push_batch(batch);
        metrics.tick();
      }
    };

    if (opt.links.empty()) {
      live::WindowedEstimator estimator(config);
      estimator.set_window_sink([&](live::WindowReport&& r) {
        if (report_out) *report_out << live::to_jsonl(r) << "\n";
        observed.push_back(scenario::observe(r));
      });
      drain([&](const net::PacketBatch& b) { estimator.push_batch(b); });
      estimator.finish();
    } else {
      engine::EngineConfig econfig;
      econfig.mode = engine::EngineMode::live;
      econfig.live = config;
      econfig.threads = opt.threads;
      engine::Engine eng(econfig);
      // Serialized by the engine even under a worker pool, so the plain
      // vector append is safe.
      eng.set_report_sink([&](engine::LinkReport&& r) {
        if (!r.window) return;
        if (report_out) {
          *report_out << live::to_jsonl(*r.window, r.name) << "\n";
        }
        observed.push_back(scenario::observe(*r.window, r.name));
      });
      for (const auto& text : opt.links) {
        (void)eng.attach(engine::parse_link_spec(text));
      }
      drain([&](const net::PacketBatch& b) { eng.push_batch(b); });
      eng.finish();
    }
    if (trace_out) trace_out->close();

    obs::scenario_flows("attack").add(source.attack_flows());
    obs::scenario_flows("baseline").add(source.flows_started() -
                                        source.attack_flows());

    scenario::ScoreReport result;
    {
      obs::StageSpan span(
          obs::stage_seconds(obs::kStageScenarioScore));
      result = scenario::score(truth, observed);
    }
    obs::scenario_alerts("tp").add(result.true_positives);
    obs::scenario_alerts("fp").add(result.false_positives);
    obs::scenario_alerts("ignored").add(result.ignored_alerts);

    const std::string json = scenario::to_json(result);
    if (opt.json_path.empty()) {
      std::printf("%s\n", json.c_str());
    } else {
      std::ofstream out(opt.json_path, std::ios::trunc);
      if (!out) {
        std::fprintf(stderr, "error: cannot open %s\n",
                     opt.json_path.c_str());
        return 1;
      }
      out << json << "\n";
      std::printf(
          "%s: %llu packets, %zu windows, %zu alerts -> precision %.3f "
          "recall %.3f (%zu/%zu events)\n",
          spec.name.c_str(), static_cast<unsigned long long>(packets),
          result.windows, result.alerts, result.precision, result.recall,
          result.detected_events, result.events.size());
    }

    bool gate_failed = false;
    if (opt.min_precision >= 0.0 && result.precision < opt.min_precision) {
      std::fprintf(stderr, "gate: precision %.3f < floor %.3f\n",
                   result.precision, opt.min_precision);
      gate_failed = true;
    }
    if (opt.min_recall >= 0.0 && result.recall < opt.min_recall) {
      std::fprintf(stderr, "gate: recall %.3f < floor %.3f\n",
                   result.recall, opt.min_recall);
      gate_failed = true;
    }
    return gate_failed ? 1 : 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
