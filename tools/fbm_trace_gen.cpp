// fbm_trace_gen — generate a synthetic backbone trace file.
//
// Usage:
//   fbm_trace_gen <out.fbmt|out.pcap|out.csv> [--duration S] [--mbps M]
//                 [--lambda F] [--tcp-fraction P] [--seed N] [--profile I]
//   fbm_trace_gen <out.fbmt|out.pcap|out.csv> --scenario FILE
//                 [--truth FILE] [--seed N]
//
// Either pick a Table-I profile (--profile 0..6, scaled) or set the target
// utilization / flow rate directly. The output format follows the file
// extension.
//
// With --scenario the packets come from the regime-switching scenario
// engine instead: the spec's segments drive a seeded, replayable stream
// (scenario::ScenarioTraceSource), written alongside its ground-truth
// event log (--truth FILE, default <out>.truth) so the capture can be
// re-analyzed and scored offline with fbm_scenario / fbm_live. --seed
// overrides the spec's seed; the other generator flags do not apply.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "scenario/source.hpp"
#include "scenario/spec.hpp"
#include "scenario/truth.hpp"
#include "trace/pcap.hpp"
#include "trace/sprint_profiles.hpp"
#include "trace/synthetic.hpp"
#include "trace/trace_format.hpp"

namespace {

[[noreturn]] void usage() {
  std::fprintf(stderr,
               "usage: fbm_trace_gen <out.fbmt|.pcap|.csv> [--duration S] "
               "[--mbps M] [--lambda F] [--tcp-fraction P] [--seed N] "
               "[--profile 0..6] [--scenario FILE [--truth FILE]]\n");
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace fbm;

  std::string out_path;
  double duration = 60.0;
  double mbps = 10.0;
  double lambda = 0.0;
  double tcp_fraction = -1.0;
  std::uint64_t seed = stats::Rng::default_seed;
  bool seed_set = false;
  int profile = -1;
  std::string scenario_path;
  std::string truth_path;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> const char* {
      if (i + 1 >= argc) usage();
      return argv[++i];
    };
    if (arg == "--duration") {
      duration = std::atof(value());
    } else if (arg == "--mbps") {
      mbps = std::atof(value());
    } else if (arg == "--lambda") {
      lambda = std::atof(value());
    } else if (arg == "--tcp-fraction") {
      tcp_fraction = std::atof(value());
    } else if (arg == "--seed") {
      seed = std::strtoull(value(), nullptr, 10);
      seed_set = true;
    } else if (arg == "--profile") {
      profile = std::atoi(value());
    } else if (arg == "--scenario") {
      scenario_path = value();
    } else if (arg == "--truth") {
      truth_path = value();
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown flag %s\n", arg.c_str());
      usage();
    } else if (out_path.empty()) {
      out_path = arg;
    } else {
      usage();
    }
  }
  if (out_path.empty()) usage();

  const auto ends_with = [&](const char* suffix) {
    const std::size_t n = std::strlen(suffix);
    return out_path.size() >= n &&
           out_path.compare(out_path.size() - n, n, suffix) == 0;
  };

  if (!scenario_path.empty()) {
    try {
      scenario::ScenarioSpec spec = scenario::load_scenario(scenario_path);
      if (seed_set) spec.seed = seed;
      const scenario::TruthLog truth = scenario::derive_truth(spec);
      if (truth_path.empty()) truth_path = out_path + ".truth";
      scenario::write_truth_file(truth_path, truth);

      scenario::ScenarioTraceSource source(spec);
      std::uint64_t packets = 0;
      if (ends_with(".pcap") || ends_with(".csv")) {
        // The interop exporters are batch; materialize, then convert.
        std::vector<net::PacketRecord> recs;
        while (auto p = source.next()) recs.push_back(*p);
        packets = recs.size();
        if (ends_with(".pcap")) {
          trace::export_pcap(out_path, recs);
        } else {
          trace::export_csv(out_path, recs);
        }
      } else {
        trace::TraceWriter writer(out_path);
        net::PacketBatch batch;
        while (source.next_batch(batch, 4096) > 0) {
          for (std::size_t i = 0; i < batch.size(); ++i) {
            writer.append(batch.record(i));
          }
        }
        writer.close();
        packets = writer.written();
      }
      std::printf("%s: scenario %s, %llu packets, %llu flows "
                  "(%llu attack) over %.1f s (seed %llu); truth -> %s\n",
                  out_path.c_str(), spec.name.c_str(),
                  static_cast<unsigned long long>(packets),
                  static_cast<unsigned long long>(source.flows_started()),
                  static_cast<unsigned long long>(source.attack_flows()),
                  spec.total_duration_s(),
                  static_cast<unsigned long long>(spec.seed),
                  truth_path.c_str());
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 1;
    }
    return 0;
  }

  trace::SyntheticConfig cfg;
  if (profile >= 0) {
    if (profile > 6) usage();
    cfg = trace::make_config(static_cast<std::size_t>(profile));
    cfg.duration_s = duration;
  } else {
    cfg.duration_s = duration;
    cfg.apply_defaults();
    if (lambda > 0.0) {
      cfg.flow_rate = lambda;
    } else {
      cfg.target_utilization_bps(mbps * 1e6);
    }
  }
  if (tcp_fraction >= 0.0) cfg.tcp_fraction = tcp_fraction;
  cfg.seed = seed;

  try {
    trace::GenerationReport rep;
    const auto packets = trace::generate_packets(cfg, &rep);
    if (ends_with(".pcap")) {
      trace::export_pcap(out_path, packets);
    } else if (ends_with(".csv")) {
      trace::export_csv(out_path, packets);
    } else {
      trace::write_trace(out_path, packets);
    }
    std::printf("%s: %llu packets, %llu flows, %.2f Mbps over %.1f s "
                "(seed %llu)\n",
                out_path.c_str(),
                static_cast<unsigned long long>(rep.packets),
                static_cast<unsigned long long>(rep.flows),
                rep.mean_rate_bps() / 1e6, cfg.duration_s,
                static_cast<unsigned long long>(seed));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
