// Shared --metrics plumbing for the fbm_* tools.
//
// Every tool accepts the same three flags:
//   --metrics FILE        append self-describing JSONL snapshots to FILE
//   --metrics-every N     seconds between snapshots (default 1)
//   --metrics-prom FILE   atomically rewrite a Prometheus exposition file
//                         each snapshot (also dumped on SIGUSR1)
//
// parse_metrics_flag() drops into each tool's existing argv loop;
// make_metrics_exporter() builds the obs::MetricsExporter the tool ticks at
// its natural cadence points and finishes before exit.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>

#include "obs/exporter.hpp"

namespace fbm::tools {

struct MetricsOptions {
  std::string jsonl;     ///< --metrics FILE
  double every_s = 1.0;  ///< --metrics-every N
  std::string prom;      ///< --metrics-prom FILE
};

/// Consumes one of the --metrics flags at argv[i] if that is what it is,
/// advancing i past the value. Returns false for any other flag. `usage`
/// is the tool's [[noreturn]] usage printer, invoked on a missing value.
inline bool parse_metrics_flag(int argc, char** argv, int& i,
                               MetricsOptions& opt, void (*usage)()) {
  const std::string arg = argv[i];
  if (arg != "--metrics" && arg != "--metrics-every" &&
      arg != "--metrics-prom") {
    return false;
  }
  if (i + 1 >= argc) {
    std::fprintf(stderr, "missing value for %s\n", arg.c_str());
    usage();
  }
  const char* value = argv[++i];
  if (arg == "--metrics") {
    opt.jsonl = value;
  } else if (arg == "--metrics-prom") {
    opt.prom = value;
  } else {
    const double v = std::atof(value);
    if (!(v > 0.0)) {
      std::fprintf(stderr, "--metrics-every wants seconds > 0, got \"%s\"\n",
                   value);
      usage();
    }
    opt.every_s = v;
  }
  return true;
}

[[nodiscard]] inline obs::MetricsExporter make_metrics_exporter(
    const MetricsOptions& opt) {
  return obs::MetricsExporter({.jsonl_path = opt.jsonl,
                               .every_s = opt.every_s,
                               .prom_path = opt.prom});
}

/// Forces the final snapshot on scope exit, so tools with many return
/// paths (and exception unwinds) still emit end-of-run totals. Declare it
/// immediately after the exporter, before the pipeline/engine it observes:
/// the pipeline then destructs (and folds its counters) first.
class MetricsFinishGuard {
 public:
  explicit MetricsFinishGuard(obs::MetricsExporter& m) : m_(m) {}
  MetricsFinishGuard(const MetricsFinishGuard&) = delete;
  MetricsFinishGuard& operator=(const MetricsFinishGuard&) = delete;
  ~MetricsFinishGuard() { m_.finish(); }

 private:
  obs::MetricsExporter& m_;
};

}  // namespace fbm::tools
